"""MDCD software error recovery: shadow takeover with local
rollback/roll-forward decisions (paper Section 2.1).

When an acceptance test fails, ``P1_sdw`` takes over ``P1_act``'s active
role.  Each surviving process checks its *local* dirty bit: dirty means
roll back to the most recent volatile checkpoint, clean means roll
forward from the current state — no message exchange is needed to make
the decision (the MDCD theorems guarantee that the local decisions yield
a globally consistent, recoverable state).  The promoted shadow then
re-sends the suppressed messages in its log beyond the valid message
register ``VR`` (the ones whose ``P1_act`` counterparts were never
validated) and keeps suppressing the rest, and guarded operation ends:
dirty bits stay 0 and the adapted TB protocol degenerates to the
original (Section 4.2, last paragraph).
"""

from __future__ import annotations

import functools
from typing import Optional

from ..app.workload import Action
from ..errors import RecoveryError
from ..messages.message import Message
from ..types import MessageKind, ProcessId, RecoveryAction, Role
from .base import MdcdEngineBase


class TakeoverEngine(MdcdEngineBase):
    """The promoted shadow's post-takeover behaviour.

    A single high-confidence component 1 remains: internal messages go
    to ``P2`` flagged clean (born valid), external messages go straight
    to the device world, and no acceptance tests run — so dirty bits
    never set again and the TB protocol behaves like its original
    version.
    """

    variant = "mdcd-takeover"

    def __init__(self, process, peer: ProcessId) -> None:
        super().__init__(process, at=None, ndc_gating=True)
        self.peer = peer
        process.mdcd.guarded = False
        process.mdcd.dirty_bit = 0

    def on_send_internal(self, action: Action) -> None:
        """Clean (born-valid) internal send to the surviving peer."""
        payload = self.process.component.produce_internal(action.stimulus)
        sn = self.process.sn.allocate()
        self.process.send_internal(payload, [self.peer], sn=sn, dirty_bit=0,
                                   validated=True,
                                   ndc=self.process.current_ndc())

    def on_send_external(self, action: Action) -> None:
        """Direct external send - no acceptance test post-takeover."""
        payload = self.process.component.produce_external(action.stimulus)
        self.process.send_external(payload, validated=True)

    def on_passed_at(self, message: Message) -> None:
        """Validate knowledge (notifications are rare post-takeover)."""
        if self.ndc_matches(message):
            self.validate_knowledge(p1act_sn=message.sn)

    def on_incoming_app(self, message: Message) -> None:
        """Apply; peers only send clean-flagged messages now."""
        self.process.apply_app_message(
            message, validated=(message.dirty_bit in (0, None)))


class SoftwareRecoveryManager:
    """Coordinates a shadow takeover across the interacting processes.

    Installed on every process as ``process.recovery_manager`` by the
    system builder; engines escalate failed ATs here.  ``peer`` may be a
    single process (the paper's three-process model) or a list of peers
    (the generalized architecture of :mod:`repro.general`).
    """

    def __init__(self, active, shadow, peer, incarnation, trace) -> None:
        self.active = active
        self.shadow = shadow
        self.peers = list(peer) if isinstance(peer, (list, tuple)) else [peer]
        self.incarnation = incarnation
        self.trace = trace
        self.completed = False
        #: A takeover is waiting for the shadow's node to restart.
        self.deferred = False
        #: Per-process recovery decisions of the last takeover, for
        #: tests and reports: {process_id: RecoveryAction}.
        self.decisions = {}
        #: Rollback distances of the last takeover (work-seconds).
        self.distances = {}
        #: Number of log entries the promoted shadow re-sent / dropped.
        self.resent = 0
        self.suppressed = 0
        #: Builds the promoted shadow's post-takeover engine; the
        #: generalized architecture overrides this with a multicast-
        #: routing variant.  A bound method (not a closure) so managers
        #: pickle into warm-start images.
        self.takeover_engine_factory = self._default_takeover_engine

    # ------------------------------------------------------------------
    def _default_takeover_engine(self, shadow):
        return TakeoverEngine(shadow, peer=self.peer.process_id)

    def _deferred_recover(self, detected_by, failed_message: Message,
                          _node) -> None:
        self.recover(detected_by, failed_message)

    @property
    def peer(self):
        """The first peer (the paper's ``P2``) — compatibility accessor
        for the three-process model."""
        return self.peers[0]

    def install(self) -> None:
        """Attach this manager to every process."""
        for proc in [self.active, self.shadow] + self.peers:
            proc.recovery_manager = self

    def recover(self, detected_by, failed_message: Message) -> None:
        """Run the takeover.  Idempotent: a second detection (e.g. a
        false alarm racing the first) is traced and ignored."""
        sim = detected_by.sim
        if self.completed:
            self.trace.record(sim.now, "recovery.software.duplicate",
                              detected_by.process_id)
            return
        if self.shadow.node.crashed:
            # Coincident software + hardware fault: the takeover target
            # is down.  Fail-stop the faulty active immediately (no
            # further contamination) but defer the takeover until the
            # shadow's node restarts — the hardware recovery that runs
            # on that restart rolls the survivors back first (its
            # listener registered earlier), then the deferred takeover
            # promotes the restored shadow.
            if not self.active.deposed:
                self.active.depose()
            self._detach_active_from_peers()
            if not self.deferred:
                self.deferred = True
                self.trace.record(sim.now, "recovery.software.deferred",
                                  detected_by.process_id,
                                  node=str(self.shadow.node.node_id))
                self.shadow.node.on_restart(
                    functools.partial(self._deferred_recover, detected_by,
                                      failed_message))
            return
        self.deferred = False
        self.completed = True
        self.trace.record(sim.now, "recovery.software.start",
                          detected_by.process_id,
                          failed=failed_message.describe())
        # Fence off every message of the failed incarnation: the failed
        # active's traffic, and any pre-rollback traffic of the others.
        self.incarnation.bump()
        if not self.active.deposed:
            self.active.depose()

        for proc in [self.shadow] + self.peers:
            self._local_decision(proc)

        self._promote_shadow()
        self._detach_active_from_peers()
        self._resend_unacknowledged()
        self.active.mdcd.guarded = False
        for proc in self.peers:
            proc.mdcd.guarded = False
        self.trace.record(sim.now, "recovery.software.done", None,
                          decisions={str(k): v.value for k, v in self.decisions.items()},
                          resent=self.resent, suppressed=self.suppressed)

    # ------------------------------------------------------------------
    def _local_decision(self, proc) -> None:
        """The paper's local rule: dirty -> rollback, clean -> roll forward."""
        if proc.node.crashed:
            # A crashed survivor has nothing to decide: its volatile
            # state is already lost, and its node's restart rolls every
            # process back to the stable recovery line — strictly more
            # conservative than either local decision.
            proc.counters.bump("recovery.decision_skipped_crashed")
            return
        if proc.mdcd.dirty_bit == 1:
            checkpoint = proc.volatile_checkpoint()
            if checkpoint is None:
                # Volatile storage was lost (e.g. an earlier crash) and
                # never re-established: fall back to the latest stable
                # checkpoint if one exists.  This is the degraded path a
                # naive protocol combination can force (paper Fig. 4(a));
                # the trace records it so scenarios can assert on it.
                checkpoint = proc.node.stable.peek(proc.process_id)
                proc.counters.bump("recovery.degraded_fallback")
                proc.trace.record(proc.sim.now, "recovery.degraded_fallback",
                                  proc.process_id)
            if checkpoint is None:
                raise RecoveryError(
                    f"{proc.process_id} is dirty but has no checkpoint to roll back to")
            self.distances[proc.process_id] = proc.restore_from(checkpoint, "software")
            self.decisions[proc.process_id] = RecoveryAction.ROLLBACK
        else:
            proc.roll_forward("software")
            self.decisions[proc.process_id] = RecoveryAction.ROLL_FORWARD

    def _promote_shadow(self) -> None:
        """Re-send unvalidated logged messages and switch the shadow's
        engine to post-takeover behaviour."""
        shadow = self.shadow
        vr = shadow.mdcd.vr
        to_resend = shadow.msg_log.entries_after(vr)
        if vr is not None:
            self.suppressed += shadow.msg_log.reclaim_up_to(vr)
        for entry in to_resend:
            message = entry.message
            # The suppressed copies were never transmitted; send them now
            # under the new incarnation.  The shadow's state is
            # non-contaminated after its local decision, so they are born
            # valid.
            if message.kind is MessageKind.EXTERNAL:
                shadow.send_external(message.payload, validated=True)
            else:
                shadow.send_internal(message.payload, entry.destinations(),
                                     sn=message.sn, dirty_bit=0, validated=True,
                                     ndc=shadow.current_ndc())
            self.resent += 1
        shadow.msg_log.clear()
        shadow.software = self.takeover_engine_factory(shadow)
        shadow.driver.resume()

    def _detach_active_from_peers(self) -> None:
        """Stop the peers from addressing the deposed active."""
        for peer in self.peers:
            engine = peer.software
            recipients = getattr(engine, "component1_recipients", None)
            if recipients is not None:
                engine.component1_recipients = [
                    pid for pid in recipients if pid != self.active.process_id]

    def _resend_unacknowledged(self) -> None:
        """Re-send survivors' unacknowledged messages under the new
        incarnation.

        The incarnation fence drops pre-recovery in-flight deliveries;
        a message a surviving process sent (and still counts as sent)
        must therefore be re-transmitted or it would be lost to a
        receiver that rolled back past it.  Receivers that did process
        the original drop the re-send by dedup key.  Messages addressed
        to the deposed active are skipped — it is out of service.
        """
        deposed = self.active.process_id
        for proc in [self.shadow] + self.peers:
            if proc.node.crashed:
                # A crashed survivor cannot transmit; its node's restart
                # runs the hardware recovery, which resends its
                # unacknowledged messages itself.
                continue
            for message in proc.acks.unacknowledged():
                if message.receiver == deposed:
                    proc.acks.acked(message.msg_id)
                    continue
                proc.resend(message)
