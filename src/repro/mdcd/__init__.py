"""The MDCD (message-driven confidence-driven) protocol family.

``original`` implements the protocol of paper Section 2.1 (Fig. 1);
``modified`` implements the coordination-ready algorithms of Section 3 /
Appendix A (Fig. 3); ``recovery`` implements shadow takeover.
"""

from .base import MdcdEngineBase
from .commissioning import commission_upgrade
from .modified import ModifiedActiveEngine, ModifiedPeerEngine, ModifiedShadowEngine
from .original import OriginalActiveEngine, OriginalPeerEngine, OriginalShadowEngine
from .recovery import SoftwareRecoveryManager, TakeoverEngine
from .state import MdcdState

__all__ = [
    "MdcdEngineBase",
    "commission_upgrade",
    "MdcdState",
    "ModifiedActiveEngine",
    "ModifiedPeerEngine",
    "ModifiedShadowEngine",
    "OriginalActiveEngine",
    "OriginalPeerEngine",
    "OriginalShadowEngine",
    "SoftwareRecoveryManager",
    "TakeoverEngine",
]
