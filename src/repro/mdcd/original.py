"""The original MDCD error-containment protocol (paper Section 2.1).

Volatile checkpoints are message-driven and confidence-driven:

* **Type-1** — taken immediately before a process state becomes
  potentially contaminated (a clean process about to apply a
  dirty-flagged message);
* **Type-2** — taken right after a potentially contaminated state is
  validated (an AT success, learned directly or via a "passed AT"
  notification).

``P1_act`` is exempt from checkpointing (the shadow takes over if it
fails) and its dirty bit is constant 1 during guarded operation.  There
is no ``Ndc`` gating — the original protocol predates the coordination
scheme.  Figure 1 of the paper is a trace of exactly these rules, and
``tests/mdcd`` replays it.
"""

from __future__ import annotations

from typing import List, Optional

from ..app.acceptance import AcceptanceTest
from ..app.workload import Action
from ..messages.message import Message
from ..types import CheckpointKind, MessageKind, ProcessId, Role
from .base import MdcdEngineBase


class OriginalActiveEngine(MdcdEngineBase):
    """``P1_act`` under the original protocol.

    Sends internal messages flagged dirty (its state is invariably
    suspect), runs the AT on every external message, and broadcasts
    "passed AT" notifications on success.  Never checkpoints.
    """

    variant = "mdcd-original"

    def __init__(self, process, at: AcceptanceTest,
                 peer: ProcessId, shadow: ProcessId) -> None:
        super().__init__(process, at=at, ndc_gating=False)
        self.peer = peer
        self.shadow = shadow
        process.mdcd.dirty_bit = 1  # constant during guarded operation
        self.trace("confidence.dirty", bit="dirty", reason="guarded-active")

    def on_send_external(self, action: Action) -> None:
        """Fig. 1 semantics: AT-test the external message; on success
        broadcast the validation, on failure escalate to takeover."""
        payload = self.process.component.produce_external(action.stimulus)
        if not self.run_acceptance_test(payload):
            self.process.request_software_recovery(
                Message(kind=MessageKind.EXTERNAL, sender=self.process.process_id,
                        receiver=ProcessId("DEVICE"), payload=payload,
                        corrupt=payload.corrupt,
                        msg_id=self.process.msg_ids.allocate()))
            return
        self.process.sn.allocate()
        self.validate_knowledge(p1act_sn=self.process.sn.current)
        self.process.send_external(payload, validated=True)
        self.process.send_passed_at([self.shadow, self.peer],
                                    msg_sn=self.process.sn.current, ndc=None)
        self._notify_validation(type2=True)

    def on_send_internal(self, action: Action) -> None:
        """Send flagged dirty with a fresh sequence number (never
        checkpointing - the shadow is P1_act's recovery story)."""
        payload = self.process.component.produce_internal(action.stimulus)
        sn = self.process.sn.allocate()
        self.process.send_internal(payload, [self.peer], sn=sn,
                                   dirty_bit=1, validated=False)

    def on_passed_at(self, message: Message) -> None:
        # P2 passed an AT: P1_act's messages up to message.sn are valid.
        """P2 passed an AT: mark the covered knowledge validated."""
        self.validate_knowledge(p1act_sn=message.sn)
        # P1_act is invariably suspect, so every validation notification
        # "validates" it (the write-through variant saves here).
        self._notify_validation(type2=True)

    def on_incoming_app(self, message: Message) -> None:
        """Apply P2's message (the active never checkpoints on receipt)."""
        self.process.apply_app_message(
            message, validated=(message.dirty_bit in (0, None)))


class OriginalShadowEngine(MdcdEngineBase):
    """``P1_sdw`` under the original protocol.

    Suppresses and logs every outgoing message; takes a Type-1
    checkpoint before its clean state applies a dirty-flagged message
    and a Type-2 checkpoint when a "passed AT" notification validates
    its potentially contaminated state.
    """

    variant = "mdcd-original"

    def __init__(self, process) -> None:
        super().__init__(process, at=None, ndc_gating=False)

    def _suppress(self, action: Action, kind: MessageKind) -> None:
        """Log the would-be message instead of transmitting it."""
        produce = (self.process.component.produce_internal
                   if kind is MessageKind.INTERNAL
                   else self.process.component.produce_external)
        payload = produce(action.stimulus)
        sn = self.process.sn.allocate()
        receiver = ProcessId(Role.PEER_2.value) if kind is MessageKind.INTERNAL \
            else ProcessId("DEVICE")
        suppressed = Message(kind=kind, sender=self.process.process_id,
                             receiver=receiver, payload=payload, sn=sn,
                             dirty_bit=self.mdcd.dirty_bit,
                             corrupt=payload.corrupt,
                             msg_id=self.process.msg_ids.allocate())
        self.process.msg_log.append(sn, suppressed)
        self.process.counters.bump("suppressed")

    def on_send_internal(self, action: Action) -> None:
        """Suppress and log (guarded operation)."""
        self._suppress(action, MessageKind.INTERNAL)

    def on_send_external(self, action: Action) -> None:
        """Suppress and log (guarded operation)."""
        self._suppress(action, MessageKind.EXTERNAL)

    def on_passed_at(self, message: Message) -> None:
        """Validation: update VR, reclaim the log, clean the dirty bit,
        and establish the Type-2 checkpoint if previously contaminated."""
        if message.sn is not None:
            self.mdcd.vr = message.sn
            self.process.msg_log.reclaim_up_to(message.sn)
        was_dirty = self.mdcd.dirty_bit == 1
        self.set_dirty(0, reason="passed-at")
        self.validate_knowledge(p1act_sn=message.sn)
        if was_dirty:
            self.process.take_volatile_checkpoint(CheckpointKind.TYPE_2)
        self._notify_validation(type2=was_dirty)

    def on_incoming_app(self, message: Message) -> None:
        """Type-1 checkpoint immediately before the first contaminating
        receipt, then apply."""
        if message.dirty_bit == 1 and self.mdcd.dirty_bit == 0:
            self.process.take_volatile_checkpoint(
                CheckpointKind.TYPE_1, meta={"trigger": message.describe()})
            self.set_dirty(1, reason="dirty-receive")
        self.process.apply_app_message(
            message, validated=(message.dirty_bit in (0, None)))


class OriginalPeerEngine(MdcdEngineBase):
    """``P2`` under the original protocol.

    Runs the AT on external messages only while potentially
    contaminated; broadcasts "passed AT" notifications carrying its
    record of ``P1_act``'s last sequence number; takes Type-1/Type-2
    checkpoints around its contamination intervals.
    """

    variant = "mdcd-original"

    def __init__(self, process, at: AcceptanceTest,
                 component1_recipients: Optional[List[ProcessId]] = None) -> None:
        super().__init__(process, at=at, ndc_gating=False)
        #: Where P2's internal messages go (the active and shadow of
        #: component 1); mutated by recovery after a takeover.
        self.component1_recipients: List[ProcessId] = list(
            component1_recipients
            or [ProcessId(Role.ACTIVE_1.value), ProcessId(Role.SHADOW_1.value)])

    def on_send_external(self, action: Action) -> None:
        """AT-test only while potentially contaminated (Fig. 10); on
        success broadcast with P1_act's last sequence number and take
        the Type-2 checkpoint."""
        payload = self.process.component.produce_external(action.stimulus)
        if self.mdcd.dirty_bit == 1:
            if not self.run_acceptance_test(payload):
                self.process.request_software_recovery(
                    Message(kind=MessageKind.EXTERNAL,
                            sender=self.process.process_id,
                            receiver=ProcessId("DEVICE"), payload=payload,
                            corrupt=payload.corrupt,
                            msg_id=self.process.msg_ids.allocate()))
                return
            self.set_dirty(0, reason="own-at")
            self.validate_knowledge(p1act_sn=self.mdcd.msg_sn_p1act)
            self.process.send_external(payload, validated=True)
            self.process.send_passed_at(
                list(self.component1_recipients),
                msg_sn=self.mdcd.msg_sn_p1act, ndc=None)
            self.process.take_volatile_checkpoint(CheckpointKind.TYPE_2)
            self._notify_validation(type2=True)
        else:
            self.process.send_external(payload, validated=True)

    def on_send_internal(self, action: Action) -> None:
        """Multicast to component 1 with the dirty bit piggybacked."""
        payload = self.process.component.produce_internal(action.stimulus)
        dirty = self.mdcd.dirty_bit
        self.process.send_internal(payload, list(self.component1_recipients),
                                   sn=None, dirty_bit=dirty,
                                   validated=(dirty == 0))

    def on_passed_at(self, message: Message) -> None:
        """Validation: record the bound, clean the dirty bit, Type-2 if
        previously contaminated."""
        if message.sn is not None:
            self.mdcd.msg_sn_p1act = message.sn
        was_dirty = self.mdcd.dirty_bit == 1
        self.set_dirty(0, reason="passed-at")
        self.validate_knowledge(p1act_sn=message.sn)
        if was_dirty:
            self.process.take_volatile_checkpoint(CheckpointKind.TYPE_2)
        self._notify_validation(type2=was_dirty)

    def on_incoming_app(self, message: Message) -> None:
        # The paper's Fig. 10 treats every application message as
        # contaminating because P2's only application correspondent is
        # P1_act, whose piggybacked dirty bit is constant 1.  Testing
        # the piggybacked bit is equivalent during guarded operation and
        # remains correct after a shadow takeover (the promoted shadow
        # sends clean-flagged messages).
        """Type-1 checkpoint before the first contaminating receipt,
        track P1_act's sequence number, apply."""
        if message.dirty_bit == 1 and self.mdcd.dirty_bit == 0:
            self.process.take_volatile_checkpoint(
                CheckpointKind.TYPE_1, meta={"trigger": message.describe()})
            self.set_dirty(1, reason="dirty-receive")
        if message.sn is not None:
            self.mdcd.msg_sn_p1act = message.sn
        self.process.apply_app_message(
            message, validated=(message.dirty_bit in (0, None)))
