"""Upgrade commissioning — the coordination's seamless disengagement.

Paper Section 4.2, last paragraph: "when this approach is used for
guarded software upgrading, after the successful completion of an
onboard software upgrade, all the software components will be considered
high-confidence components; accordingly, the MDCD protocol will go on
leave, and each process's dirty bit will have a constant value of zero.
This, in turn, leads the adapted TB algorithm ... to become equivalent
to its original version."

:func:`commission_upgrade` performs that transition: the (now trusted)
upgraded version keeps the active role, the escorting shadow is retired,
dirty bits drop to zero for good, and — with every establishment now
finding a clean process — the adapted TB protocol's behaviour collapses
to the original's (current-state contents, ``tau(0)`` blocking).  The
reverse is starting a new guarded phase, which is simply building a new
system; the paper's point is that *no protocol swap* is needed in either
direction.
"""

from __future__ import annotations

from ..errors import ProtocolError
from ..types import Role
from .recovery import TakeoverEngine


def commission_upgrade(system) -> None:
    """Declare the guarded upgrade successful on a running system.

    The upgraded version (``P1_act``) is promoted to high confidence:
    its engine switches to unguarded operation (clean internal sends,
    externals without acceptance tests), the shadow is retired (its
    suppressed log is discarded — every entry merely mirrored validated
    or soon-validated active messages), and ``P2`` stops multicasting to
    the retired shadow.

    Raises :class:`~repro.errors.ProtocolError` if a takeover already
    happened (there is no upgrade left to commission) or if the system
    was already commissioned.
    """
    if system.sw_recovery.completed:
        raise ProtocolError(
            "cannot commission the upgrade: the shadow already took over")
    active, shadow, peer = system.active, system.shadow, system.peer
    if not active.mdcd.guarded:
        raise ProtocolError("upgrade already commissioned")

    # The upgraded version is trusted from here on: it behaves like a
    # post-takeover component-1 (clean sends, no ATs) — which is exactly
    # "high-confidence active" behaviour.
    active.software = TakeoverEngine(active, peer=peer.process_id)
    active.mdcd.guarded = False
    active.mdcd.dirty_bit = 0
    active.mdcd.pseudo_dirty_bit = 0

    # Declaring every component high-confidence retroactively validates
    # the not-yet-validated message history (and releases any deferred
    # acknowledgements that were waiting on a validation).  Dirty bits
    # drop first: ack release requires a clean receiver.
    peer.mdcd.dirty_bit = 0
    peer.mdcd.taint_sn = None
    for proc in (active, peer):
        for journal in (proc.journal_sent, proc.journal_recv):
            for record in journal.records(validated=False):
                record.validated = True
        proc.flush_deferred_acks()

    # Retire the escort.
    shadow.msg_log.clear()
    shadow.depose()
    shadow.mdcd.guarded = False

    # P2 stops addressing the retired shadow; its dirty bit can only
    # stay clean from now on (all incoming messages are clean-flagged).
    recipients = getattr(peer.software, "component1_recipients", None)
    if recipients is not None:
        peer.software.component1_recipients = [
            pid for pid in recipients if pid != shadow.process_id]
    peer.mdcd.guarded = False
    peer.mdcd.dirty_bit = 0

    system.trace.record(system.sim.now, "upgrade.commissioned", None,
                        active=str(active.process_id))
