"""MDCD per-process knowledge state.

These are the variables the paper's algorithms (Appendix A) read and
write: the dirty bit, ``P1_act``'s pseudo dirty bit, the shadow's valid
message register ``VR``, and the peers' record of ``P1_act``'s message
sequence number.  The state is plain data and is included in every
checkpoint, so rollback restores the knowledge a process had at
checkpoint time.
"""

from __future__ import annotations

import dataclasses
from typing import Optional


@dataclasses.dataclass
class MdcdState:
    """Checkpointable MDCD knowledge of one process.

    Attributes
    ----------
    dirty_bit:
        1 while the process state is potentially contaminated.  For
        ``P1_act`` this is constant 1 during guarded operation ("the
        process is invariably regarded as potentially contaminated").
    pseudo_dirty_bit:
        ``P1_act`` only (modified protocol): reset to 0 on AT success or
        a matching "passed AT" notification, set to 1 immediately before
        the first internal send after a validation.  Drives pseudo
        checkpoints and substitutes for the dirty bit in the adapted TB
        protocol's ``write_disk`` (paper footnote 2).
    vr:
        The shadow's valid message register ``VR``: the highest
        ``P1_act`` sequence number known valid.  ``None`` before any
        validation.
    msg_sn_p1act:
        ``P2``'s (and, symmetrically, the recovery logic's) record of
        the last ``P1_act`` message sequence number it received —
        the value ``P2`` piggybacks on its own "passed AT" broadcasts.
    guarded:
        Whether guarded operation is in effect.  After a shadow takeover
        (or a completed upgrade) MDCD "goes on leave": every dirty bit
        stays 0 and the adapted TB protocol degenerates to the original
        (paper Section 4.2, last paragraph).
    """

    dirty_bit: int = 0
    pseudo_dirty_bit: int = 0
    vr: Optional[int] = None
    msg_sn_p1act: int = 0
    guarded: bool = True
    #: Contamination provenance (generalized K-peer protocol): the
    #: highest ``P1_act`` sequence number that influenced this process's
    #: state, directly or transitively.  ``None`` while clean.  The
    #: paper's three-process protocols leave it unused: their chain
    #: topology guarantees a validator's bound covers its audience's
    #: contamination, so the unconditional dirty-bit reset is sound
    #: there — but not in a general interaction graph.
    taint_sn: Optional[int] = None
    #: Rollback-hazard sources (generalized protocol): peers whose
    #: dirty-flagged messages this process applied and whose *cleaning*
    #: it has not yet observed.  Until a dirty sender is known clean,
    #: it may still roll back past those sends (its recovery anchor is
    #: its contamination onset), so the receiver must stay suspicious
    #: even if the messages' own provenance is covered by a validation.
    dirty_sources: Optional[set] = None
    #: Per-source contamination provenance (N-component topologies):
    #: guarded active role id -> highest sequence number of that active
    #: influencing this process's state.  ``None``/empty while clean.
    taint_map: Optional[dict] = None
    #: Per-source valid-bound registers (N-component topologies): the
    #: highest certified sequence number per guarded active.
    vr_map: Optional[dict] = None
    #: Per-source record of the last sequence number received from each
    #: guarded active (the value peers merge into their own "passed AT"
    #: bound maps).
    msg_sn_map: Optional[dict] = None

    #: Snapshot section this state is encoded under (see
    #: :mod:`repro.snapshot.sections`).
    snapshot_section = "mdcd"

    def __post_init__(self) -> None:
        if self.dirty_sources is None:
            self.dirty_sources = set()

    def copy(self) -> "MdcdState":
        """An independent copy (checkpoints pickle the whole snapshot,
        but in-process consumers occasionally need one too)."""
        return dataclasses.replace(
            self, dirty_sources=set(self.dirty_sources),
            taint_map=dict(self.taint_map) if self.taint_map is not None else None,
            vr_map=dict(self.vr_map) if self.vr_map is not None else None,
            msg_sn_map=(dict(self.msg_sn_map)
                        if self.msg_sn_map is not None else None))
