"""Common machinery for the MDCD protocol engines.

Each of the paper's three process roles has its own error-containment
algorithm (Appendix A); the engines share bookkeeping: acceptance-test
execution, validity-view updates on the journals, the ``Ndc`` gate for
"passed AT" notifications, and a validation-event hook that the
write-through baseline uses to trigger stable Type-2 saves.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..app.acceptance import AcceptanceTest
from ..app.workload import Action
from ..messages.message import Message
from ..types import ProcessId


class MdcdEngineBase:
    """Base class for per-role MDCD engines.

    Parameters
    ----------
    process:
        The hosting :class:`~repro.host.FtProcess`.
    at:
        The acceptance test (roles that validate external messages).
    ndc_gating:
        Whether "passed AT" handling compares the piggybacked stable
        checkpoint epoch ``Ndc`` with the local one (the modified
        protocol's rule; the original protocol has no ``Ndc``).
    """

    #: Human-readable protocol variant tag, overridden by subclasses.
    variant = "mdcd"

    def __init__(self, process, at: Optional[AcceptanceTest] = None,
                 ndc_gating: bool = False) -> None:
        self.process = process
        self.at = at
        self.ndc_gating = ndc_gating
        self._validation_listeners: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # shortcuts
    # ------------------------------------------------------------------
    @property
    def mdcd(self):
        """The process's MDCD knowledge state."""
        return self.process.mdcd

    @property
    def now(self) -> float:
        """Current simulated true time."""
        return self.process.sim.now

    def trace(self, category: str, **data) -> None:
        """Record a trace entry attributed to this engine's process."""
        recorder = self.process.trace
        if recorder.enabled:
            recorder.record(self.now, category, self.process.process_id, **data)

    def set_dirty(self, value: int, reason: str = "") -> None:
        """Set the dirty bit, tracing the transition (the timeline
        renderer reconstructs the paper's shaded contamination intervals
        from these records)."""
        if self.mdcd.dirty_bit != value:
            self.trace("confidence.dirty" if value else "confidence.clean",
                       bit="dirty", reason=reason)
        self.mdcd.dirty_bit = value

    def set_pseudo_dirty(self, value: int, reason: str = "") -> None:
        """Set ``P1_act``'s pseudo dirty bit, tracing the transition."""
        if self.mdcd.pseudo_dirty_bit != value:
            self.trace("confidence.dirty" if value else "confidence.clean",
                       bit="pseudo", reason=reason)
        self.mdcd.pseudo_dirty_bit = value

    # ------------------------------------------------------------------
    # validation-event hook (write-through baseline subscribes here)
    # ------------------------------------------------------------------
    def on_validation(self, listener: Callable[[bool], None]) -> None:
        """Register a callback fired after every validation event (own
        AT success, or an accepted "passed AT" notification).

        The callback receives ``type2``: whether the event validated a
        *potentially contaminated* state, i.e. whether the original
        protocol would establish a Type-2 checkpoint here.  A clean
        process learning of someone else's AT success has nothing to
        validate, so no Type-2 (and, in the write-through variant, no
        stable save) results.
        """
        self._validation_listeners.append(listener)

    def _notify_validation(self, type2: bool) -> None:
        for listener in list(self._validation_listeners):
            listener(type2)

    # ------------------------------------------------------------------
    # shared pieces
    # ------------------------------------------------------------------
    def ndc_matches(self, message: Message) -> bool:
        """The modified protocol's gate: act on a "passed AT" iff its
        piggybacked ``Ndc`` equals the local ``Ndc``.

        With gating disabled (original protocol) every notification is
        acted upon.  A notification from a process that has already
        completed its current stable-checkpoint establishment carries a
        higher ``Ndc`` and is ignored until the local establishment
        catches up — the paper's Section 4.2 parenthetical.
        """
        if not self.ndc_gating:
            return True
        return message.ndc == self.process.current_ndc()

    def run_acceptance_test(self, payload) -> bool:
        """Run the AT and trace the outcome."""
        passed = self.at.test(payload)
        self.trace("at.pass" if passed else "at.fail",
                   corrupt=payload.corrupt)
        self.process.counters.bump("at.pass" if passed else "at.fail")
        return passed

    def validate_knowledge(self, p1act_sn: Optional[int]) -> None:
        """Apply a validation event to the journals.

        A validation certifies the validating process's state, hence
        every message it sent or received up to that state.  ``P1_act``'s
        messages are additionally bounded by the validated sequence
        number ``p1act_sn`` (the notification's ``msg_SN``), because its
        sequence numbers are the coordinate system of the valid message
        register.
        """
        from ..types import Role
        p1act = ProcessId(Role.ACTIVE_1.value)
        for journal in (self.process.journal_sent, self.process.journal_recv):
            for rec in journal.records(validated=False):
                if rec.sender == p1act:
                    if p1act_sn is not None and rec.sn is not None and rec.sn <= p1act_sn:
                        rec.validated = True
                else:
                    rec.validated = True
        # Newly-validated received messages can now be acknowledged: the
        # process's future rollback targets reflect them.
        self.process.flush_deferred_acks()

    # ------------------------------------------------------------------
    # hooks implemented by role engines
    # ------------------------------------------------------------------
    def on_send_internal(self, action: Action) -> None:  # pragma: no cover
        """Handle an application-initiated internal send."""
        raise NotImplementedError

    def on_send_external(self, action: Action) -> None:  # pragma: no cover
        """Handle an application-initiated external send."""
        raise NotImplementedError

    def on_passed_at(self, message: Message) -> None:  # pragma: no cover
        """Handle a received "passed AT" notification."""
        raise NotImplementedError

    def on_incoming_app(self, message: Message) -> None:  # pragma: no cover
        """Handle a received application message."""
        raise NotImplementedError
