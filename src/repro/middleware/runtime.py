"""The GSU middleware runtime.

Hosts user :class:`~repro.middleware.logic.ComponentLogic` on the
paper's guarded three-process architecture with any protocol scheme —
by default the full coordination (modified MDCD + adapted TB).  The
runtime reuses the system builder's wiring (nodes, network, engines,
recovery managers) and replaces the synthetic workload with the user's
logic: a *primary* and a *secondary* implementation of component 1 run
as ``P1_act``/``P1_sdw`` under guard, and component 2 runs as ``P2``.

Typical use::

    runtime = GsuRuntime(MiddlewareConfig(seed=1))
    runtime.install_component_one(primary=NewController(),
                                  secondary=ProvenController(),
                                  tick_period=5.0)
    runtime.install_component_two(Telemetry(), tick_period=8.0)
    runtime.inject_design_fault(at=100.0)   # the upgrade's latent bug
    runtime.run(1_000.0)

Fidelity and limits (prototype middleware, matching the paper's status
for it): software-error recovery (shadow takeover) carries the full
MDCD guarantees; hardware recovery restores checkpointed user state and
re-sends unacknowledged messages, but — unlike the synthetic-workload
harness, which replays its action stream — user sends are regenerated
only insofar as the user's (deterministic, state-driven) tick logic
regenerates them, so handlers should tolerate duplicate or missing
deliveries across a hardware recovery.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..app.faults import HardwareFaultPlan, SoftwareFaultPlan
from ..app.versions import HighConfidenceVersion, LowConfidenceVersion
from ..app.workload import WorkloadConfig
from ..coordination.scheme import Scheme, System, SystemConfig, build_system
from ..errors import ConfigurationError
from ..runtime import ClockConfig, EventPriority, NetworkConfig
from ..tb.blocking import TbConfig
from ..types import Role
from .logic import ComponentLogic, LogicComponent


@dataclasses.dataclass(frozen=True)
class MiddlewareConfig:
    """Runtime configuration (the protocol knobs of
    :class:`~repro.coordination.scheme.SystemConfig`, minus workload)."""

    scheme: Scheme = Scheme.COORDINATED
    seed: int = 0
    horizon: float = 100_000.0
    clock: ClockConfig = dataclasses.field(default_factory=ClockConfig)
    network: NetworkConfig = dataclasses.field(default_factory=NetworkConfig)
    tb: TbConfig = dataclasses.field(default_factory=TbConfig)
    trace_enabled: bool = True


class GsuRuntime:
    """Guarded-software-upgrading runtime for user component logic."""

    def __init__(self, config: MiddlewareConfig = MiddlewareConfig()) -> None:
        self.config = config
        # The underlying system provides nodes, network, engines and
        # recovery; its synthetic workload is configured to (near) zero
        # and the components are swapped for logic adapters below.
        idle = WorkloadConfig(internal_rate=1e-12, external_rate=1e-12,
                              step_rate=1e-12, horizon=config.horizon)
        self.system: System = build_system(SystemConfig(
            scheme=config.scheme, seed=config.seed, horizon=config.horizon,
            clock=config.clock, network=config.network, tb=config.tb,
            workload1=idle, workload2=idle,
            trace_enabled=config.trace_enabled))
        self.components: Dict[Role, LogicComponent] = {}
        self._tick_periods: Dict[str, float] = {}
        self._started = False

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------
    def install_component_one(self, primary: ComponentLogic,
                              secondary: ComponentLogic,
                              tick_period: Optional[float] = None) -> None:
        """Install the guarded component: ``primary`` runs as the
        low-confidence ``P1_act``, ``secondary`` as the high-confidence
        shadow.  They must implement the same protocol-visible
        behaviour (the shadow takes over on a detected error)."""
        self._install(Role.ACTIVE_1, primary, self.system.low_version)
        self._install(Role.SHADOW_1, secondary,
                      HighConfidenceVersion("component1-secondary"))
        if tick_period is not None:
            self._tick_periods["component1"] = tick_period

    def install_component_two(self, logic: ComponentLogic,
                              tick_period: Optional[float] = None) -> None:
        """Install the second (high-confidence) component as ``P2``."""
        self._install(Role.PEER_2, logic,
                      HighConfidenceVersion("component2"))
        if tick_period is not None:
            self._tick_periods["component2"] = tick_period

    def _install(self, role: Role, logic: ComponentLogic, version) -> None:
        process = self.system.processes[role]
        component = LogicComponent(f"{role.value}-logic", version, logic)
        component.bind(process)
        process.component = component
        self.components[role] = component

    # ------------------------------------------------------------------
    # faults
    # ------------------------------------------------------------------
    def inject_design_fault(self, at: float,
                            until: Optional[float] = None) -> None:
        """Activate the primary's latent design fault at ``at``
        (optionally deactivating at ``until``)."""
        self.system.inject_software_fault(
            SoftwareFaultPlan(activate_at=at, deactivate_at=until))

    def inject_crash(self, node_id: str, at: float,
                     repair_time: float = 1.0) -> None:
        """Crash (and later restart) one of ``N1a``/``N1b``/``N2``."""
        self.system.inject_crash(HardwareFaultPlan(
            node_id=node_id, crash_at=at, repair_time=repair_time))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the protocols, deliver ``on_start``, arm tick loops."""
        if self._started:
            return
        missing = {Role.ACTIVE_1, Role.SHADOW_1, Role.PEER_2} - set(self.components)
        if missing:
            raise ConfigurationError(
                f"components not installed for roles: {sorted(r.value for r in missing)}")
        self._started = True
        # Deliver on_start BEFORE the protocols start: the genesis
        # stable checkpoints must capture the initialized user state, or
        # an early hardware recovery would restore a pre-init dict.
        for component in self.components.values():
            component.start()
        self.system.start()
        if "component1" in self._tick_periods:
            self._arm_tick(self._tick_periods["component1"],
                           [Role.ACTIVE_1, Role.SHADOW_1])
        if "component2" in self._tick_periods:
            self._arm_tick(self._tick_periods["component2"], [Role.PEER_2])

    def run(self, until: Optional[float] = None) -> None:
        """Start (if needed) and run the simulation."""
        self.start()
        self.system.run(until=until)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def in_service(self) -> List[LogicComponent]:
        """Components of in-service processes (excludes a deposed
        primary after takeover)."""
        return [c for c in self.components.values()
                if not c.process.deposed]

    def state_of(self, role: Role) -> Dict:
        """The (live) user state dict of one replica."""
        return self.components[role].state.data

    def takeover_happened(self) -> bool:
        """Whether the secondary has taken over the primary's role."""
        return self.system.sw_recovery.completed

    def commission_upgrade(self) -> None:
        """Declare the upgrade successful: the primary is trusted from
        now on, the escorting secondary retires, and the coordination
        disengages (the adapted TB protocol becomes equivalent to the
        original).  Typically called after a confidence-building period
        with no acceptance-test failures."""
        self.system.commission_upgrade()

    # ------------------------------------------------------------------
    def _arm_tick(self, period: float, roles: List[Role]) -> None:
        if period <= 0:
            raise ConfigurationError(f"tick period must be positive: {period}")
        sim = self.system.sim

        def fire() -> None:
            for role in roles:
                process = self.system.processes[role]
                if process.deposed or not process.alive:
                    continue
                process.component.tick()
            sim.schedule_after(period, fire, priority=EventPriority.ACTION,
                               label=f"tick:{roles[0].value}")

        sim.schedule_after(period, fire, priority=EventPriority.ACTION,
                           label=f"tick:{roles[0].value}")
