"""User-facing component logic for the GSU middleware.

The paper's concluding remarks describe the *GSU Middleware*: a layer
that lets real application components run under the MDCD protocol (and,
as planned there and implemented here, under the full coordination
scheme).  This module defines the embedding contract:

* subclass :class:`ComponentLogic` and implement ``on_start`` /
  ``on_message`` / ``on_tick``;
* keep **all** mutable state in ``ctx.state`` (a dict) — it is what the
  checkpoints capture and rollback restores;
* send through the context (``ctx.send`` for internal messages to the
  counterpart component, ``ctx.emit`` for external messages to devices);
  the middleware routes every send through the protocol engines, so
  suppression (shadow), acceptance testing, dirty-bit piggybacking and
  blocking-period deferral all apply exactly as in the paper.

Determinism contract: handlers must be deterministic functions of
``ctx.state`` and their inputs (no wall clock, no ambient randomness
— use ``ctx.now`` and derive pseudo-randomness from state), because the
active and shadow replicas of component 1 run the same logic on the
same inputs and the shadow's takeover correctness rests on their
equivalence.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional

from ..app.component import Payload
from ..app.versions import LowConfidenceVersion, SoftwareVersion
from ..app.workload import Action, ActionKind


class ComponentLogic:
    """Base class for user component logic (stateless by contract —
    state lives in the context)."""

    def on_start(self, ctx: "Context") -> None:
        """Called once when the runtime starts."""

    def on_message(self, ctx: "Context", value: Any) -> None:
        """Called for every internal message delivered to this replica."""

    def on_tick(self, ctx: "Context") -> None:
        """Called at the component's configured tick period."""


@dataclasses.dataclass
class LogicState:
    """Checkpointable state of a logic-driven component.

    ``data`` is the user's state dict; ``corrupt`` is the hidden ground
    truth (identical semantics to
    :class:`repro.app.component.AppState`); the queues hold values whose
    sends are in flight through the engine path.
    """

    #: Snapshot section this state is encoded under (same as
    #: :class:`~repro.app.component.AppState`).
    snapshot_section = "app"

    data: Dict[str, Any] = dataclasses.field(default_factory=dict)
    corrupt: bool = False
    inputs_applied: int = 0
    pending_internal: List[Any] = dataclasses.field(default_factory=list)
    pending_external: List[Any] = dataclasses.field(default_factory=list)


class Context:
    """The handle user logic receives in every callback."""

    def __init__(self, component: "LogicComponent") -> None:
        self._component = component

    @property
    def state(self) -> Dict[str, Any]:
        """The checkpointed state dict (mutate freely; must stay
        picklable)."""
        return self._component.state.data

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._component.process.sim.now

    @property
    def process_id(self) -> str:
        """This replica's process id (``P1_act``/``P1_sdw``/``P2``)."""
        return str(self._component.process.process_id)

    def send(self, value: Any) -> None:
        """Send an internal message to the counterpart component.

        Routed through the protocol engines: the shadow's copy is
        suppressed and logged, dirty bits are piggybacked, and sends
        landing in a blocking period are deferred.
        """
        self._component.enqueue_send(value, external=False)

    def emit(self, value: Any) -> None:
        """Send an external message to the device world (subject to
        acceptance testing when this replica is potentially
        contaminated)."""
        self._component.enqueue_send(value, external=True)


class LogicComponent:
    """Adapter presenting :class:`ComponentLogic` through the component
    interface the host and protocol engines consume.

    Sends initiated by user code are queued on the (checkpointed) state
    and flushed through ``FtProcess.perform_action`` so every protocol
    hook fires; the engines then call back into
    :meth:`produce_internal`/:meth:`produce_external` to pop the queued
    value into a payload.  The component's
    :class:`~repro.app.versions.SoftwareVersion` decides fault
    behaviour: an active low-confidence version perturbs emitted values
    and contaminates the state, exactly as in the synthetic workload.
    """

    def __init__(self, name: str, version: SoftwareVersion,
                 logic: ComponentLogic) -> None:
        self.name = name
        self.version = version
        self.logic = logic
        self.state = LogicState()
        self.process = None  # bound by the runtime
        self.ctx = Context(self)

    # ------------------------------------------------------------------
    # runtime wiring
    # ------------------------------------------------------------------
    def bind(self, process) -> None:
        """Attach the hosting process (runtime-internal)."""
        self.process = process

    def start(self) -> None:
        """Deliver the ``on_start`` callback."""
        self.logic.on_start(self.ctx)

    def tick(self) -> None:
        """Deliver one ``on_tick`` callback."""
        self.logic.on_tick(self.ctx)

    def enqueue_send(self, value: Any, external: bool) -> None:
        """Queue a user-initiated send and push it through the host's
        action path (blocking deferral, deposed checks, engines)."""
        if external:
            self.state.pending_external.append(value)
            kind = ActionKind.SEND_EXTERNAL
        else:
            self.state.pending_internal.append(value)
            kind = ActionKind.SEND_INTERNAL
        self.process.perform_action(
            Action(index=20_000_000, kind=kind, gap=0.0, stimulus=0))

    # ------------------------------------------------------------------
    # the component interface the engines consume
    # ------------------------------------------------------------------
    def produce_internal(self, stimulus: int) -> Payload:
        """Pop the next queued internal value into a payload."""
        return self._produce(self.state.pending_internal)

    def produce_external(self, stimulus: int) -> Payload:
        """Pop the next queued external value into a payload."""
        return self._produce(self.state.pending_external)

    def _produce(self, queue: List[Any]) -> Payload:
        value = queue.pop(0) if queue else None
        corrupt = self.state.corrupt
        if (isinstance(self.version, LowConfidenceVersion)
                and self.version.fault_active):
            self.version.fault_count += 1
            self.state.corrupt = True
            corrupt = True
            value = ("CORRUPTED", value)
        return Payload(value=value, corrupt=corrupt)

    def receive_internal(self, payload: Payload) -> None:
        """Deliver a payload to the user's on_message handler."""
        if payload.corrupt:
            self.state.corrupt = True
        self.state.inputs_applied += 1
        self.logic.on_message(self.ctx, payload.value)

    def local_step(self, stimulus: int) -> None:
        """No synthetic computation steps in middleware mode."""

    # ------------------------------------------------------------------
    # checkpointing support (same contract as ApplicationComponent)
    # ------------------------------------------------------------------
    def snapshot(self) -> LogicState:
        """Deep-copy the checkpointable state."""
        import copy
        return copy.deepcopy(self.state)

    def restore(self, state: LogicState) -> None:
        """Replace the live state with a restored copy."""
        import copy
        self.state = copy.deepcopy(state)

    def describe(self) -> Dict[str, Any]:
        """Summary for traces and reports."""
        return {"name": self.name, "corrupt": self.state.corrupt,
                "inputs": self.state.inputs_applied,
                "version": self.version.name,
                "keys": sorted(self.state.data)}
