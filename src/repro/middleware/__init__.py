"""GSU middleware: run user component logic under the paper's guarded,
protocol-coordinated execution (the concluding-remarks system)."""

from .logic import ComponentLogic, Context, LogicComponent, LogicState
from .runtime import GsuRuntime, MiddlewareConfig

__all__ = [
    "ComponentLogic",
    "Context",
    "GsuRuntime",
    "LogicComponent",
    "LogicState",
    "MiddlewareConfig",
]
