"""System builder: complete systems under each protocol scheme the
paper discusses, over any :class:`~repro.topology.model.Topology`.

A :class:`System` instantiates the paper's architecture — by default
the three-process shape with ``P1_act`` (low-confidence version),
``P1_sdw`` (high-confidence version of the same component, same
workload stream) and ``P2`` (the second component), or any
``--topology NxK`` membership of N guarded components with K shadows
each plus unguarded peers — and wires the protocol engines according
to a :class:`Scheme`:

* ``MDCD_ONLY`` — original MDCD, volatile checkpoints only (no hardware
  fault tolerance): the Fig. 1 setting.
* ``WRITE_THROUGH`` — original MDCD whose Type-2 checkpoints are also
  written through to stable storage (Section 3's strawman; Fig. 7's
  ``E[D_wt]``).
* ``NAIVE`` — original MDCD + unmodified original TB running side by
  side with no coordination (Section 4.1; Fig. 4's interference).
* ``COORDINATED`` — modified MDCD + adapted TB: the paper's
  contribution (Fig. 7's ``E[D_co]``).
* ``COORDINATED_NO_SWAP`` — coordination with the mid-blocking content
  swap disabled (ablation; reproduces the Fig. 4(b) recoverability
  violation inside the otherwise-coordinated scheme).

``Topology.paper()`` (the default) drives the builder through exactly
the historical construction order — node creation, workload-stream RNG
draws, process and acceptance-test instantiation — so every paper-shape
run, and in particular the pinned Fig. 6 golden digests, is bit-for-bit
identical to the pre-topology builder.  Non-paper topologies require a
coordinated scheme: the topology engines generalize the modified MDCD
algorithms with per-source provenance, and recovery runs through the
:class:`~repro.topology.recovery.TopologyRecoveryManager` with a
deterministic shadow election over the live group view.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional

from ..app.acceptance import AcceptanceTest, AcceptanceTestConfig
from ..app.component import ApplicationComponent
from ..app.faults import (
    HardwareFaultInjector,
    HardwareFaultPlan,
    SoftwareFaultInjector,
    SoftwareFaultPlan,
)
from ..app.versions import HighConfidenceVersion, LowConfidenceVersion
from ..app.workload import WorkloadConfig, WorkloadDriver, generate_actions
from ..host import FtProcess, IncarnationCounter
from ..messages.message import MsgIdAllocator
from ..mdcd.modified import (
    ModifiedActiveEngine,
    ModifiedPeerEngine,
    ModifiedShadowEngine,
)
from ..mdcd.original import (
    OriginalActiveEngine,
    OriginalPeerEngine,
    OriginalShadowEngine,
)
from ..mdcd.recovery import SoftwareRecoveryManager
from ..runtime import (ClockConfig, Network, NetworkConfig, Node, RngRegistry,
                       Simulator, TraceRecorder)
from ..tb.adapted import AdaptedTbEngine
from ..tb.blocking import TbConfig
from ..tb.hardware_recovery import HardwareRecoveryCoordinator
from ..tb.original import OriginalTbEngine
from ..tb.resync import ResyncService
from ..topology.engines import (
    TopologyActiveEngine,
    TopologyPeerEngine,
    TopologyShadowEngine,
)
from ..topology.model import Member, MemberKind, Topology, parse_topology
from ..topology.recovery import TopologyRecoveryManager
from ..topology.view import GroupView
from ..types import NodeId, ProcessId, Role
from .write_through import WriteThroughEngine


class Scheme(enum.Enum):
    """Which protocol combination a system runs."""

    MDCD_ONLY = "mdcd-only"
    WRITE_THROUGH = "write-through"
    NAIVE = "naive"
    COORDINATED = "coordinated"
    COORDINATED_NO_SWAP = "coordinated-no-swap"

    @property
    def has_stable_checkpoints(self) -> bool:
        """Whether the scheme tolerates hardware faults at all."""
        return self is not Scheme.MDCD_ONLY

    @property
    def uses_modified_mdcd(self) -> bool:
        """Whether the scheme runs the Appendix A (modified) algorithms."""
        return self in (Scheme.COORDINATED, Scheme.COORDINATED_NO_SWAP)


@dataclasses.dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build a reproducible system."""

    scheme: Scheme = Scheme.COORDINATED
    seed: int = 0
    horizon: float = 10_000.0
    clock: ClockConfig = dataclasses.field(default_factory=ClockConfig)
    network: NetworkConfig = dataclasses.field(default_factory=NetworkConfig)
    tb: TbConfig = dataclasses.field(default_factory=TbConfig)
    workload1: WorkloadConfig = dataclasses.field(default_factory=WorkloadConfig)
    workload2: WorkloadConfig = dataclasses.field(default_factory=WorkloadConfig)
    at: AcceptanceTestConfig = dataclasses.field(default_factory=AcceptanceTestConfig)
    trace_enabled: bool = True
    #: Optional category-prefix allowlist for the trace (``None`` keeps
    #: everything).  Campaign runners that assert over one slice of the
    #: trace set this so every other record costs nothing.
    trace_categories: Optional[tuple] = None
    #: Recycle fired kernel events through a free-list (see
    #: :class:`repro.sim.events.EventPool`).  Pure representation: the
    #: kernel bench asserts campaign samples are identical on/off.
    event_pooling: bool = False
    #: Retention window for validated journal records; the effective
    #: value is never below four TB intervals so pruning cannot touch
    #: records near a live checkpoint line.
    journal_retention: float = 600.0
    #: How many stable-checkpoint epochs each node retains (>= 2 so the
    #: recovery line survives a laggard establishment; scenario analyses
    #: raise it to audit every historical line).
    stable_history: int = 2
    #: Snapshot codec ids for the two checkpoint stores (see
    #: :func:`repro.snapshot.available_codecs`).  Pure representation
    #: knobs: they cannot perturb the event sequence of a run.
    volatile_codec: str = "pickle"
    stable_codec: str = "pickle"
    #: Size-proportional component of the stable write latency
    #: (seconds per KiB written); ``0.0`` keeps the fixed-latency model.
    stable_latency_per_kib: float = 0.0
    #: Whether journals and message logs encode as deltas against the
    #: previous capture (full sections when off).
    incremental_snapshots: bool = True
    #: Membership spec: ``"paper"`` (the exact three-process shape) or
    #: ``"NxK"``/``"NxK+U"`` — N guarded components with K shadows each
    #: plus U unguarded peers (default U = N).  Non-paper topologies
    #: require a coordinated scheme.
    topology: str = "paper"

    def with_scheme(self, scheme: Scheme) -> "SystemConfig":
        """Same configuration, different scheme — the paired-comparison
        helper Figure 7 uses (identical seeds and workloads)."""
        return dataclasses.replace(self, scheme=scheme)


class System:
    """A built, runnable system over a topology (paper shape by
    default)."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.topology = parse_topology(config.topology)
        if not self.topology.is_paper and not config.scheme.uses_modified_mdcd:
            raise ValueError(
                f"non-paper topology {self.topology.spec!r} requires a "
                "coordinated scheme: the topology engines generalize the "
                "modified MDCD algorithms")
        self.sim = Simulator(pooling=config.event_pooling)
        #: Per-system message-id sequence.  Captured and thawed with the
        #: system (warm-start images), so thawed and forked systems in
        #: one OS process never share or reset global allocator state.
        self.msg_ids = MsgIdAllocator()
        self.rng = RngRegistry(config.seed)
        self.trace = TraceRecorder(enabled=config.trace_enabled,
                                   categories=config.trace_categories)
        self.network = Network(self.sim, config.network, self.rng)
        self.incarnation = IncarnationCounter()

        self.nodes: Dict[str, Node] = {
            name: Node(NodeId(name), self.sim, config.clock, self.rng,
                       stable_history=config.stable_history,
                       volatile_codec=config.volatile_codec,
                       stable_codec=config.stable_codec,
                       stable_latency_per_kib=config.stable_latency_per_kib)
            for name in dict.fromkeys(self.topology.node_ids())
        }

        # One action stream per distinct workload stream, generated in
        # first-appearance member order — for the paper topology this is
        # "component1" then "component2", the historical RNG draw order.
        actions: Dict[str, list] = {}
        for member in self.topology.members:
            if member.stream in actions:
                continue
            workload = (config.workload2 if member.kind is MemberKind.PEER
                        else config.workload1)
            actions[member.stream] = generate_actions(
                dataclasses.replace(workload, horizon=config.horizon),
                self.rng, member.stream)

        self.low_versions: Dict[int, LowConfidenceVersion] = {
            c: LowConfidenceVersion(f"component{c}-low")
            for c in range(1, self.topology.n_components + 1)}
        #: Component 1's low-confidence version (historical accessor).
        self.low_version = self.low_versions[1]

        self.processes: Dict[Role, FtProcess] = {}
        self.members: Dict[str, FtProcess] = {}
        for member in self.topology.members:
            if member.kind is MemberKind.ACTIVE:
                component = ApplicationComponent(
                    member.stream, self.low_versions[member.component])
            elif member.kind is MemberKind.SHADOW:
                component = ApplicationComponent(
                    member.stream,
                    HighConfidenceVersion(f"{member.stream}-high"))
            else:
                component = ApplicationComponent(
                    member.stream, HighConfidenceVersion(member.stream))
            self._build_process(member, component,
                                WorkloadDriver(self.sim,
                                               actions[member.stream],
                                               member.driver))

        self.resync: Optional[ResyncService] = None
        self.hw_recovery: Optional[HardwareRecoveryCoordinator] = None
        self._wire_engines()

        if self.topology.is_paper:
            # Inert bookkeeping view (no trace, no node listeners):
            # the paper path must stay byte-identical.
            self.view = GroupView(self.topology)
            self.sw_recovery = SoftwareRecoveryManager(
                active=self.active, shadow=self.shadow, peer=self.peer,
                incarnation=self.incarnation, trace=self.trace)
        else:
            self.view = GroupView(self.topology, trace=self.trace,
                                  clock=self.sim)
            for node in self.nodes.values():
                node.on_crash(self.view._on_node_crash)
                node.on_restart(self.view._on_node_restart)
            self.sw_recovery = TopologyRecoveryManager(
                self.topology, self.view, self.members,
                incarnation=self.incarnation, trace=self.trace)
        self.sw_recovery.install()
        self.injectors: List = []
        self._started = False

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _build_process(self, member: Member,
                       component: ApplicationComponent,
                       driver: WorkloadDriver) -> None:
        try:
            role: Optional[Role] = Role(member.role_id)
        except ValueError:
            role = None
        process = FtProcess(
            process_id=ProcessId(member.role_id),
            node=self.nodes[member.node_id], network=self.network,
            component=component, driver=driver, incarnation=self.incarnation,
            role=role, trace=self.trace)
        process.msg_ids = self.msg_ids
        process.is_guarded_active = member.kind is MemberKind.ACTIVE
        process.journal_retention = max(self.config.journal_retention,
                                        4.0 * self.config.tb.interval)
        process.snapshot_encoder.incremental = self.config.incremental_snapshots
        self.members[member.role_id] = process
        if role is not None:
            self.processes[role] = process

    def _wire_engines(self) -> None:
        if not self.topology.is_paper:
            self._wire_topology_engines()
            return
        config = self.config
        active, shadow, peer = self.active, self.shadow, self.peer
        at_active = AcceptanceTest(config.at, self.rng, "P1act")
        at_peer = AcceptanceTest(config.at, self.rng, "P2")

        if config.scheme.uses_modified_mdcd:
            sw_active = ModifiedActiveEngine(active, at_active,
                                             peer=peer.process_id,
                                             shadow=shadow.process_id)
            sw_shadow = ModifiedShadowEngine(shadow)
            sw_peer = ModifiedPeerEngine(peer, at_peer)
            # The adapted TB's checkpoint swap can durably anchor a
            # process *before* internal sends its peers durably reflect
            # receiving (e.g. P1_act's pseudo checkpoint vs. P2's
            # current state once a later AT validated those messages).
            # Such lines are safe exactly under the piecewise-
            # determinism assumption of message-logging recovery: the
            # rolled-back sender's replay regenerates the identical
            # per-receiver stream and receivers deduplicate it — so the
            # coordinated schemes carry destination sequence numbers.
            # Found by the schedule audit; see DESIGN.md.
            for proc in (active, shadow, peer):
                proc.replay_dedup = True
        else:
            sw_active = OriginalActiveEngine(active, at_active,
                                             peer=peer.process_id,
                                             shadow=shadow.process_id)
            sw_shadow = OriginalShadowEngine(shadow)
            sw_peer = OriginalPeerEngine(peer, at_peer)

        hw_engines: Dict[Role, object] = {}
        if config.scheme in (Scheme.COORDINATED, Scheme.COORDINATED_NO_SWAP,
                             Scheme.NAIVE):
            self.resync = ResyncService(
                self.sim, [n.clock for n in self.nodes.values()], self.trace)
            tb_config = config.tb
            if config.scheme is Scheme.COORDINATED_NO_SWAP:
                tb_config = dataclasses.replace(tb_config,
                                                swap_on_confidence_change=False)
            engine_cls = (OriginalTbEngine if config.scheme is Scheme.NAIVE
                          else AdaptedTbEngine)
            for role, proc in self.processes.items():
                hw_engines[role] = engine_cls(proc, tb_config, config.clock,
                                              config.network, resync=self.resync)
        elif config.scheme is Scheme.WRITE_THROUGH:
            for role, proc in self.processes.items():
                hw_engines[role] = WriteThroughEngine(proc)

        active.attach_engines(software=sw_active, hardware=hw_engines.get(Role.ACTIVE_1))
        shadow.attach_engines(software=sw_shadow, hardware=hw_engines.get(Role.SHADOW_1))
        peer.attach_engines(software=sw_peer, hardware=hw_engines.get(Role.PEER_2))

        if config.scheme.has_stable_checkpoints:
            self.hw_recovery = HardwareRecoveryCoordinator(
                list(self.processes.values()), self.incarnation, self.trace)
            self.hw_recovery.install()

    def _wire_topology_engines(self) -> None:
        """Wire the per-source-provenance engines over a non-paper
        topology (always a coordinated scheme — checked at build).

        Interaction shape: actives are pure ingress — they produce into
        the peer mesh and receive no application traffic, so a guarded
        pair's action streams never diverge when *another* component
        recovers; peers exchange among themselves, which is where
        multi-source contamination mixes and the per-source taint maps
        earn their keep.
        """
        config = self.config
        topo = self.topology
        pids = {rid: self.members[rid].process_id for rid in topo.role_ids()}
        peer_pids = [pids[p.role_id] for p in topo.peers()]
        active_pids = [pids[a.role_id] for a in topo.actives()]

        software: Dict[str, object] = {}
        for member in topo.members:
            proc = self.members[member.role_id]
            if member.kind is MemberKind.ACTIVE:
                at = AcceptanceTest(config.at, self.rng, member.driver)
                software[member.role_id] = TopologyActiveEngine(
                    proc, at,
                    shadows=[pids[s.role_id]
                             for s in topo.shadows_of(member.component)],
                    peers=peer_pids)
            elif member.kind is MemberKind.SHADOW:
                software[member.role_id] = TopologyShadowEngine(
                    proc,
                    active_id=pids[topo.active_of(member.component).role_id],
                    peers=peer_pids)
            else:
                at = AcceptanceTest(config.at, self.rng, member.driver)
                software[member.role_id] = TopologyPeerEngine(
                    proc, at, active_ids=active_pids,
                    other_peers=[pid for pid in peer_pids
                                 if pid != proc.process_id],
                    notification_recipients=[pids[rid]
                                             for rid in topo.role_ids()
                                             if rid != member.role_id])
            # Same piecewise-determinism argument as the paper path:
            # coordinated schemes carry destination sequence numbers.
            proc.replay_dedup = True

        self.resync = ResyncService(
            self.sim, [n.clock for n in self.nodes.values()], self.trace)
        tb_config = config.tb
        if config.scheme is Scheme.COORDINATED_NO_SWAP:
            tb_config = dataclasses.replace(tb_config,
                                            swap_on_confidence_change=False)
        hw_engines: Dict[str, object] = {
            rid: AdaptedTbEngine(proc, tb_config, config.clock,
                                 config.network, resync=self.resync)
            for rid, proc in self.members.items()}
        for rid, proc in self.members.items():
            proc.attach_engines(software=software[rid],
                                hardware=hw_engines.get(rid))
        self.hw_recovery = HardwareRecoveryCoordinator(
            list(self.members.values()), self.incarnation, self.trace)
        self.hw_recovery.install()

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def active(self) -> FtProcess:
        """``P1_act`` (paper topology only)."""
        return self.processes[Role.ACTIVE_1]

    @property
    def shadow(self) -> FtProcess:
        """``P1_sdw`` (paper topology only)."""
        return self.processes[Role.SHADOW_1]

    @property
    def peer(self) -> FtProcess:
        """``P2`` (paper topology only)."""
        return self.processes[Role.PEER_2]

    def member(self, role_id: str) -> FtProcess:
        """The process serving a topology role id."""
        return self.members[role_id]

    def process_list(self) -> List[FtProcess]:
        """All processes, in topology member order."""
        return [self.members[rid] for rid in self.topology.role_ids()]

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def inject_software_fault(self, plan: SoftwareFaultPlan) -> SoftwareFaultInjector:
        """Arm a software design fault in the targeted component's
        low-confidence version (component 1 unless the plan says
        otherwise)."""
        version = self.low_versions[getattr(plan, "component", 1)]
        injector = SoftwareFaultInjector(self.sim, version, plan, self.trace)
        injector.arm()
        self.injectors.append(injector)
        return injector

    def inject_crash(self, plan: HardwareFaultPlan) -> HardwareFaultInjector:
        """Arm a node crash (and restart)."""
        injector = HardwareFaultInjector(self.sim, self.nodes[plan.node_id],
                                         plan, self.trace)
        injector.arm()
        self.injectors.append(injector)
        return injector

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start every process (genesis checkpoints, first timers,
        workload streams).  Idempotent."""
        if self._started:
            return
        self._started = True
        self.msg_ids.reset()
        for proc in self.process_list():
            proc.start()

    def run(self, until: Optional[float] = None) -> None:
        """Start (if needed) and run until ``until`` (default: the
        configured horizon)."""
        self.start()
        self.sim.run(until=until if until is not None else self.config.horizon)

    def commission_upgrade(self) -> None:
        """Declare the guarded upgrade successful: retire the shadow,
        trust the upgraded version, and let the coordination disengage
        seamlessly (paper Section 4.2, last paragraph).  See
        :func:`repro.mdcd.commissioning.commission_upgrade`."""
        from ..mdcd.commissioning import commission_upgrade
        commission_upgrade(self)


def build_system(config: Optional[SystemConfig] = None, **overrides) -> System:
    """Build a system from ``config`` (default :class:`SystemConfig`),
    applying keyword overrides to the config first.

    >>> system = build_system(seed=7, scheme=Scheme.COORDINATED)
    >>> system.run(until=100.0)
    """
    base = config if config is not None else SystemConfig()
    if overrides:
        base = dataclasses.replace(base, **overrides)
    return System(base)
