"""System builder: complete three-process systems under each protocol
scheme the paper discusses.

A :class:`System` instantiates the paper's architecture — three nodes
hosting ``P1_act`` (low-confidence version), ``P1_sdw`` (high-confidence
version of the same component, same workload stream) and ``P2`` (the
second component) — and wires the protocol engines according to a
:class:`Scheme`:

* ``MDCD_ONLY`` — original MDCD, volatile checkpoints only (no hardware
  fault tolerance): the Fig. 1 setting.
* ``WRITE_THROUGH`` — original MDCD whose Type-2 checkpoints are also
  written through to stable storage (Section 3's strawman; Fig. 7's
  ``E[D_wt]``).
* ``NAIVE`` — original MDCD + unmodified original TB running side by
  side with no coordination (Section 4.1; Fig. 4's interference).
* ``COORDINATED`` — modified MDCD + adapted TB: the paper's
  contribution (Fig. 7's ``E[D_co]``).
* ``COORDINATED_NO_SWAP`` — coordination with the mid-blocking content
  swap disabled (ablation; reproduces the Fig. 4(b) recoverability
  violation inside the otherwise-coordinated scheme).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional

from ..app.acceptance import AcceptanceTest, AcceptanceTestConfig
from ..app.component import ApplicationComponent
from ..app.faults import (
    HardwareFaultInjector,
    HardwareFaultPlan,
    SoftwareFaultInjector,
    SoftwareFaultPlan,
)
from ..app.versions import HighConfidenceVersion, LowConfidenceVersion
from ..app.workload import WorkloadConfig, WorkloadDriver, generate_actions
from ..host import FtProcess, IncarnationCounter
from ..mdcd.modified import (
    ModifiedActiveEngine,
    ModifiedPeerEngine,
    ModifiedShadowEngine,
)
from ..mdcd.original import (
    OriginalActiveEngine,
    OriginalPeerEngine,
    OriginalShadowEngine,
)
from ..mdcd.recovery import SoftwareRecoveryManager
from ..runtime import (ClockConfig, Network, NetworkConfig, Node, RngRegistry,
                       Simulator, TraceRecorder)
from ..tb.adapted import AdaptedTbEngine
from ..tb.blocking import TbConfig
from ..tb.hardware_recovery import HardwareRecoveryCoordinator
from ..tb.original import OriginalTbEngine
from ..tb.resync import ResyncService
from ..types import NodeId, ProcessId, Role
from .write_through import WriteThroughEngine


class Scheme(enum.Enum):
    """Which protocol combination a system runs."""

    MDCD_ONLY = "mdcd-only"
    WRITE_THROUGH = "write-through"
    NAIVE = "naive"
    COORDINATED = "coordinated"
    COORDINATED_NO_SWAP = "coordinated-no-swap"

    @property
    def has_stable_checkpoints(self) -> bool:
        """Whether the scheme tolerates hardware faults at all."""
        return self is not Scheme.MDCD_ONLY

    @property
    def uses_modified_mdcd(self) -> bool:
        """Whether the scheme runs the Appendix A (modified) algorithms."""
        return self in (Scheme.COORDINATED, Scheme.COORDINATED_NO_SWAP)


@dataclasses.dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build a reproducible system."""

    scheme: Scheme = Scheme.COORDINATED
    seed: int = 0
    horizon: float = 10_000.0
    clock: ClockConfig = dataclasses.field(default_factory=ClockConfig)
    network: NetworkConfig = dataclasses.field(default_factory=NetworkConfig)
    tb: TbConfig = dataclasses.field(default_factory=TbConfig)
    workload1: WorkloadConfig = dataclasses.field(default_factory=WorkloadConfig)
    workload2: WorkloadConfig = dataclasses.field(default_factory=WorkloadConfig)
    at: AcceptanceTestConfig = dataclasses.field(default_factory=AcceptanceTestConfig)
    trace_enabled: bool = True
    #: Optional category-prefix allowlist for the trace (``None`` keeps
    #: everything).  Campaign runners that assert over one slice of the
    #: trace set this so every other record costs nothing.
    trace_categories: Optional[tuple] = None
    #: Recycle fired kernel events through a free-list (see
    #: :class:`repro.sim.events.EventPool`).  Pure representation: the
    #: kernel bench asserts campaign samples are identical on/off.
    event_pooling: bool = False
    #: Retention window for validated journal records; the effective
    #: value is never below four TB intervals so pruning cannot touch
    #: records near a live checkpoint line.
    journal_retention: float = 600.0
    #: How many stable-checkpoint epochs each node retains (>= 2 so the
    #: recovery line survives a laggard establishment; scenario analyses
    #: raise it to audit every historical line).
    stable_history: int = 2
    #: Snapshot codec ids for the two checkpoint stores (see
    #: :func:`repro.snapshot.available_codecs`).  Pure representation
    #: knobs: they cannot perturb the event sequence of a run.
    volatile_codec: str = "pickle"
    stable_codec: str = "pickle"
    #: Size-proportional component of the stable write latency
    #: (seconds per KiB written); ``0.0`` keeps the fixed-latency model.
    stable_latency_per_kib: float = 0.0
    #: Whether journals and message logs encode as deltas against the
    #: previous capture (full sections when off).
    incremental_snapshots: bool = True

    def with_scheme(self, scheme: Scheme) -> "SystemConfig":
        """Same configuration, different scheme — the paired-comparison
        helper Figure 7 uses (identical seeds and workloads)."""
        return dataclasses.replace(self, scheme=scheme)


class System:
    """A built, runnable three-process system."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.sim = Simulator(pooling=config.event_pooling)
        self.rng = RngRegistry(config.seed)
        self.trace = TraceRecorder(enabled=config.trace_enabled,
                                   categories=config.trace_categories)
        self.network = Network(self.sim, config.network, self.rng)
        self.incarnation = IncarnationCounter()

        self.nodes: Dict[str, Node] = {
            name: Node(NodeId(name), self.sim, config.clock, self.rng,
                       stable_history=config.stable_history,
                       volatile_codec=config.volatile_codec,
                       stable_codec=config.stable_codec,
                       stable_latency_per_kib=config.stable_latency_per_kib)
            for name in ("N1a", "N1b", "N2")
        }

        actions1 = generate_actions(
            dataclasses.replace(config.workload1, horizon=config.horizon),
            self.rng, "component1")
        actions2 = generate_actions(
            dataclasses.replace(config.workload2, horizon=config.horizon),
            self.rng, "component2")

        self.low_version = LowConfidenceVersion("component1-low")
        self.processes: Dict[Role, FtProcess] = {}
        self._build_process(Role.ACTIVE_1, self.nodes["N1a"],
                            ApplicationComponent("component1", self.low_version),
                            WorkloadDriver(self.sim, actions1, "P1act"))
        self._build_process(Role.SHADOW_1, self.nodes["N1b"],
                            ApplicationComponent(
                                "component1", HighConfidenceVersion("component1-high")),
                            WorkloadDriver(self.sim, actions1, "P1sdw"))
        self._build_process(Role.PEER_2, self.nodes["N2"],
                            ApplicationComponent(
                                "component2", HighConfidenceVersion("component2")),
                            WorkloadDriver(self.sim, actions2, "P2"))

        self.resync: Optional[ResyncService] = None
        self.hw_recovery: Optional[HardwareRecoveryCoordinator] = None
        self._wire_engines()

        self.sw_recovery = SoftwareRecoveryManager(
            active=self.active, shadow=self.shadow, peer=self.peer,
            incarnation=self.incarnation, trace=self.trace)
        self.sw_recovery.install()
        self.injectors: List = []
        self._started = False

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _build_process(self, role: Role, node: Node,
                       component: ApplicationComponent,
                       driver: WorkloadDriver) -> None:
        process = FtProcess(
            process_id=ProcessId(role.value), node=node, network=self.network,
            component=component, driver=driver, incarnation=self.incarnation,
            role=role, trace=self.trace)
        process.journal_retention = max(self.config.journal_retention,
                                        4.0 * self.config.tb.interval)
        process.snapshot_encoder.incremental = self.config.incremental_snapshots
        self.processes[role] = process

    def _wire_engines(self) -> None:
        config = self.config
        active, shadow, peer = self.active, self.shadow, self.peer
        at_active = AcceptanceTest(config.at, self.rng, "P1act")
        at_peer = AcceptanceTest(config.at, self.rng, "P2")

        if config.scheme.uses_modified_mdcd:
            sw_active = ModifiedActiveEngine(active, at_active,
                                             peer=peer.process_id,
                                             shadow=shadow.process_id)
            sw_shadow = ModifiedShadowEngine(shadow)
            sw_peer = ModifiedPeerEngine(peer, at_peer)
            # The adapted TB's checkpoint swap can durably anchor a
            # process *before* internal sends its peers durably reflect
            # receiving (e.g. P1_act's pseudo checkpoint vs. P2's
            # current state once a later AT validated those messages).
            # Such lines are safe exactly under the piecewise-
            # determinism assumption of message-logging recovery: the
            # rolled-back sender's replay regenerates the identical
            # per-receiver stream and receivers deduplicate it — so the
            # coordinated schemes carry destination sequence numbers.
            # Found by the schedule audit; see DESIGN.md.
            for proc in (active, shadow, peer):
                proc.replay_dedup = True
        else:
            sw_active = OriginalActiveEngine(active, at_active,
                                             peer=peer.process_id,
                                             shadow=shadow.process_id)
            sw_shadow = OriginalShadowEngine(shadow)
            sw_peer = OriginalPeerEngine(peer, at_peer)

        hw_engines: Dict[Role, object] = {}
        if config.scheme in (Scheme.COORDINATED, Scheme.COORDINATED_NO_SWAP,
                             Scheme.NAIVE):
            self.resync = ResyncService(
                self.sim, [n.clock for n in self.nodes.values()], self.trace)
            tb_config = config.tb
            if config.scheme is Scheme.COORDINATED_NO_SWAP:
                tb_config = dataclasses.replace(tb_config,
                                                swap_on_confidence_change=False)
            engine_cls = (OriginalTbEngine if config.scheme is Scheme.NAIVE
                          else AdaptedTbEngine)
            for role, proc in self.processes.items():
                hw_engines[role] = engine_cls(proc, tb_config, config.clock,
                                              config.network, resync=self.resync)
        elif config.scheme is Scheme.WRITE_THROUGH:
            for role, proc in self.processes.items():
                hw_engines[role] = WriteThroughEngine(proc)

        active.attach_engines(software=sw_active, hardware=hw_engines.get(Role.ACTIVE_1))
        shadow.attach_engines(software=sw_shadow, hardware=hw_engines.get(Role.SHADOW_1))
        peer.attach_engines(software=sw_peer, hardware=hw_engines.get(Role.PEER_2))

        if config.scheme.has_stable_checkpoints:
            self.hw_recovery = HardwareRecoveryCoordinator(
                list(self.processes.values()), self.incarnation, self.trace)
            self.hw_recovery.install()

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def active(self) -> FtProcess:
        """``P1_act``."""
        return self.processes[Role.ACTIVE_1]

    @property
    def shadow(self) -> FtProcess:
        """``P1_sdw``."""
        return self.processes[Role.SHADOW_1]

    @property
    def peer(self) -> FtProcess:
        """``P2``."""
        return self.processes[Role.PEER_2]

    def process_list(self) -> List[FtProcess]:
        """All processes, in role order."""
        return [self.active, self.shadow, self.peer]

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def inject_software_fault(self, plan: SoftwareFaultPlan) -> SoftwareFaultInjector:
        """Arm a software design fault in the low-confidence version."""
        injector = SoftwareFaultInjector(self.sim, self.low_version, plan, self.trace)
        injector.arm()
        self.injectors.append(injector)
        return injector

    def inject_crash(self, plan: HardwareFaultPlan) -> HardwareFaultInjector:
        """Arm a node crash (and restart)."""
        injector = HardwareFaultInjector(self.sim, self.nodes[plan.node_id],
                                         plan, self.trace)
        injector.arm()
        self.injectors.append(injector)
        return injector

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start every process (genesis checkpoints, first timers,
        workload streams).  Idempotent."""
        if self._started:
            return
        self._started = True
        from ..messages.message import reset_msg_ids
        reset_msg_ids()
        for proc in self.process_list():
            proc.start()

    def run(self, until: Optional[float] = None) -> None:
        """Start (if needed) and run until ``until`` (default: the
        configured horizon)."""
        self.start()
        self.sim.run(until=until if until is not None else self.config.horizon)

    def commission_upgrade(self) -> None:
        """Declare the guarded upgrade successful: retire the shadow,
        trust the upgraded version, and let the coordination disengage
        seamlessly (paper Section 4.2, last paragraph).  See
        :func:`repro.mdcd.commissioning.commission_upgrade`."""
        from ..mdcd.commissioning import commission_upgrade
        commission_upgrade(self)


def build_system(config: Optional[SystemConfig] = None, **overrides) -> System:
    """Build a system from ``config`` (default :class:`SystemConfig`),
    applying keyword overrides to the config first.

    >>> system = build_system(seed=7, scheme=Scheme.COORDINATED)
    >>> system.run(until=100.0)
    """
    base = config if config is not None else SystemConfig()
    if overrides:
        base = dataclasses.replace(base, **overrides)
    return System(base)
