"""Protocol combinations: the coordinated scheme (the paper's
contribution), the write-through baseline, and the naive combination."""

from .naive import build_naive_system
from .scheme import Scheme, System, SystemConfig, build_system
from .write_through import WriteThroughEngine

__all__ = [
    "Scheme",
    "System",
    "SystemConfig",
    "WriteThroughEngine",
    "build_naive_system",
    "build_system",
]
