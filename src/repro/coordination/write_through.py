"""The write-through baseline (paper Section 3).

A variant MDCD protocol in which every process — including ``P1_act`` —
saves a Type-2 checkpoint to *stable* storage at every validation event
(its own AT success or a received "passed AT" notification).  The
resulting stable checkpoints form a consistent global state, so hardware
faults are tolerated; but checkpoint frequency is tied to the external
message rate, so a process "may suffer an excessive rollback distance
when a hardware fault occurs" — this is the ``E[D_wt]`` curve of
Figure 7, against which the coordinated scheme's ``E[D_co]`` is
compared.
"""

from __future__ import annotations

from ..messages.message import Message
from ..types import CheckpointKind, StableContent


class WriteThroughEngine:
    """A hardware-FT engine with no timers: stable saves are driven by
    the MDCD validation events.

    Exposes the same surface the host and the hardware-recovery
    coordinator expect from a TB engine (``start``/``stop``/
    ``should_buffer``/``on_crash``/``reset_after_recovery``/``ndc``),
    so it is a drop-in alternative.
    """

    variant = "write-through"

    def __init__(self, process) -> None:
        self.process = process
        #: Epoch counter: one per stable save, to align recovery lines.
        self.ndc = 0
        self.in_blocking = False  # the write-through variant never blocks
        self.stopped = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Save the genesis checkpoint and subscribe to the software
        engine's validation events."""
        store = self.process.node.stable
        if store.peek(self.process.process_id) is None:
            genesis = self.process.capture_checkpoint(
                CheckpointKind.STABLE, epoch=0,
                content=StableContent.CURRENT_STATE, meta={"genesis": True})
            store.save(genesis)
        if self.process.software is not None:
            self.process.software.on_validation(self._save)

    def stop(self) -> None:
        """Permanently stop saving (deposed process)."""
        self.stopped = True

    def on_crash(self) -> None:
        """Nothing in flight to abort — saves are synchronous."""

    def reset_after_recovery(self, epoch: int) -> None:
        """Adopt the recovery line's epoch after a global rollback."""
        self.ndc = epoch

    def should_buffer(self, message: Message) -> bool:
        """Write-through never blocks deliveries."""
        return False

    # ------------------------------------------------------------------
    def _save(self, type2: bool) -> None:
        # Every process saves at *every* validation event — "a
        # broadcasted 'passed AT' notification message would trigger
        # each of the processes to establish a Type-2 checkpoint"
        # (paper Section 3) — which keeps the per-process epoch counters
        # aligned and the resulting lines mutually consistent.  The
        # ``type2`` flag is deliberately ignored here.
        del type2
        if self.stopped or self.process.node.crashed or self.process.deposed:
            return
        epoch = self.ndc + 1
        checkpoint = self.process.capture_checkpoint(
            CheckpointKind.STABLE, epoch=epoch,
            content=StableContent.CURRENT_STATE,
            meta={"trigger": "validation"})
        self.process.node.stable.save(checkpoint)
        self.ndc = epoch
        self.process.counters.bump("checkpoint.stable")
        self.process.compact_journals()
        self.process.trace.record(
            self.process.sim.now, "tb.establish.done", self.process.process_id,
            epoch=epoch, content=StableContent.CURRENT_STATE.value,
            swapped=False, write_through=True)
