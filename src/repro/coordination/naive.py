"""The naive combination (paper Section 4.1).

"Directly combining [the TB protocol] with the MDCD protocol would not
extend a system's fault tolerance capability, but rather may have a
detrimental effect on system reliability."  The naive system runs the
*original* MDCD and the *original* TB side by side with no coordination:

* the TB engine saves the **current** state at every timer expiry,
  regardless of the dirty bit — so a potentially contaminated ``P2``
  gets a contaminated stable checkpoint while the clean shadow gets a
  clean one (Fig. 4(a)): after a hardware fault, ``P2`` "would have no
  choice but to roll back to a potentially contaminated state and become
  unable to restore a non-contaminated state if a software error is
  detected subsequently";
* "passed AT" notifications are blocked like any other message and
  carry no ``Ndc``, so validations can silently straddle checkpoint
  lines.

This module only provides the convenience constructor; the wiring lives
in :func:`repro.coordination.scheme.build_system` with
``scheme=Scheme.NAIVE``.  The executable demonstration of the Fig. 4
failures is :mod:`repro.experiments.scenarios`.
"""

from __future__ import annotations

from typing import Optional

from .scheme import Scheme, System, SystemConfig, build_system


def build_naive_system(config: Optional[SystemConfig] = None, **overrides) -> System:
    """A system running the uncoordinated MDCD + TB combination."""
    overrides["scheme"] = Scheme.NAIVE
    return build_system(config, **overrides)
