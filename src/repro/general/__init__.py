"""The generalized guarded architecture: one guarded component among
``K`` interacting peers (the restriction-removal extension the paper
cites as its follow-up work [5])."""

from .engines import (
    GeneralActiveEngine,
    GeneralPeerEngine,
    GeneralShadowEngine,
    GeneralTakeoverEngine,
    route,
)
from .system import GeneralSystem, GeneralSystemConfig, build_general_system

__all__ = [
    "GeneralActiveEngine",
    "GeneralPeerEngine",
    "GeneralShadowEngine",
    "GeneralSystem",
    "GeneralSystemConfig",
    "GeneralTakeoverEngine",
    "build_general_system",
    "route",
]
