"""Builder for the generalized guarded architecture: one guarded
component (active + shadow) among ``K`` interacting high-confidence
peers, under the full coordination scheme.

Node layout: ``N1a`` (active), ``N1b`` (shadow), ``N2`` .. ``N{K+1}``
(one per peer).  Every process runs the adapted TB engine; hardware
recovery and timer resynchronization span all ``K + 2`` processes.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..app.acceptance import AcceptanceTest, AcceptanceTestConfig
from ..app.component import ApplicationComponent
from ..app.faults import (
    HardwareFaultInjector,
    HardwareFaultPlan,
    SoftwareFaultInjector,
    SoftwareFaultPlan,
)
from ..app.versions import HighConfidenceVersion, LowConfidenceVersion
from ..app.workload import WorkloadConfig, WorkloadDriver, generate_actions
from ..errors import ConfigurationError
from ..host import FtProcess, IncarnationCounter
from ..mdcd.recovery import SoftwareRecoveryManager
from ..sim.clock import ClockConfig
from ..sim.kernel import Simulator
from ..sim.network import Network, NetworkConfig
from ..sim.node import Node
from ..sim.rng import RngRegistry
from ..sim.trace import TraceRecorder
from ..tb.adapted import AdaptedTbEngine
from ..tb.blocking import TbConfig
from ..tb.hardware_recovery import HardwareRecoveryCoordinator
from ..tb.resync import ResyncService
from ..types import NodeId, ProcessId, Role
from .engines import (
    GeneralActiveEngine,
    GeneralPeerEngine,
    GeneralShadowEngine,
    GeneralTakeoverEngine,
)


@dataclasses.dataclass(frozen=True)
class GeneralSystemConfig:
    """Configuration of a generalized (K-peer) guarded system."""

    n_peers: int = 3
    seed: int = 0
    horizon: float = 10_000.0
    clock: ClockConfig = dataclasses.field(default_factory=ClockConfig)
    network: NetworkConfig = dataclasses.field(default_factory=NetworkConfig)
    tb: TbConfig = dataclasses.field(default_factory=TbConfig)
    workload1: WorkloadConfig = dataclasses.field(default_factory=WorkloadConfig)
    workload_peer: WorkloadConfig = dataclasses.field(default_factory=WorkloadConfig)
    at: AcceptanceTestConfig = dataclasses.field(default_factory=AcceptanceTestConfig)
    trace_enabled: bool = True
    #: Category-prefix allowlist for the trace (``None`` = everything).
    trace_categories: Optional[tuple] = None
    #: Recycle fired kernel events through a free-list.
    event_pooling: bool = False
    stable_history: int = 2
    #: Snapshot pipeline knobs (same semantics as
    #: :class:`~repro.coordination.scheme.SystemConfig`).
    volatile_codec: str = "pickle"
    stable_codec: str = "pickle"
    stable_latency_per_kib: float = 0.0
    incremental_snapshots: bool = True

    def __post_init__(self) -> None:
        if self.n_peers < 1:
            raise ConfigurationError("the guarded pair needs at least one peer")


class GeneralSystem:
    """A built, runnable ``K + 2``-process guarded system."""

    def __init__(self, config: GeneralSystemConfig) -> None:
        self.config = config
        self.sim = Simulator(pooling=config.event_pooling)
        self.rng = RngRegistry(config.seed)
        self.trace = TraceRecorder(enabled=config.trace_enabled,
                                   categories=config.trace_categories)
        self.network = Network(self.sim, config.network, self.rng)
        self.incarnation = IncarnationCounter()
        self.nodes: Dict[str, Node] = {}
        self.low_version = LowConfidenceVersion("component1-low")
        self.peer_ids: List[ProcessId] = [
            ProcessId(f"P{k + 2}") for k in range(config.n_peers)]

        actions1 = generate_actions(
            dataclasses.replace(config.workload1, horizon=config.horizon),
            self.rng, "component1")
        self.active = self._build(Role.ACTIVE_1.value, "N1a",
                                  self.low_version, actions1, "P1act")
        self.shadow = self._build(Role.SHADOW_1.value, "N1b",
                                  HighConfidenceVersion("component1-high"),
                                  actions1, "P1sdw")
        self.peers: List[FtProcess] = []
        for k, pid in enumerate(self.peer_ids):
            actions = generate_actions(
                dataclasses.replace(config.workload_peer, horizon=config.horizon),
                self.rng, f"peer{k + 2}")
            self.peers.append(self._build(
                str(pid), f"N{k + 2}",
                HighConfidenceVersion(f"component{k + 2}"), actions, str(pid)))

        self._wire_engines()
        self.sw_recovery = SoftwareRecoveryManager(
            active=self.active, shadow=self.shadow, peer=self.peers,
            incarnation=self.incarnation, trace=self.trace)
        self.sw_recovery.takeover_engine_factory = self._takeover_engine
        self.sw_recovery.install()
        self.hw_recovery = HardwareRecoveryCoordinator(
            self.process_list(), self.incarnation, self.trace)
        self.hw_recovery.install()
        self.injectors: List = []
        self._started = False

    # ------------------------------------------------------------------
    def _takeover_engine(self, shadow):
        return GeneralTakeoverEngine(shadow, peers=self.peer_ids)

    def _build(self, process_id: str, node_name: str, version,
               actions, driver_name: str) -> FtProcess:
        node = Node(NodeId(node_name), self.sim, self.config.clock, self.rng,
                    stable_history=self.config.stable_history,
                    volatile_codec=self.config.volatile_codec,
                    stable_codec=self.config.stable_codec,
                    stable_latency_per_kib=self.config.stable_latency_per_kib)
        self.nodes[node_name] = node
        component = ApplicationComponent(f"{process_id}-component", version)
        process = FtProcess(ProcessId(process_id), node, self.network,
                            component,
                            WorkloadDriver(self.sim, actions, driver_name),
                            self.incarnation,
                            role=Role(process_id) if process_id in
                            (Role.ACTIVE_1.value, Role.SHADOW_1.value,
                             Role.PEER_2.value) else None,
                            trace=self.trace)
        process.journal_retention = max(600.0, 4.0 * self.config.tb.interval)
        # The generalized stack assumes piecewise-deterministic replay:
        # per-destination sequence numbers let receivers deduplicate a
        # rolled-back sender's regenerated message stream.
        process.replay_dedup = True
        process.snapshot_encoder.incremental = self.config.incremental_snapshots
        return process

    def _wire_engines(self) -> None:
        config = self.config
        shadow_id = self.shadow.process_id
        active_id = self.active.process_id
        self.resync = ResyncService(
            self.sim, [n.clock for n in self.nodes.values()], self.trace)

        self.active.attach_engines(
            software=GeneralActiveEngine(
                self.active, AcceptanceTest(config.at, self.rng, "P1act"),
                peers=self.peer_ids, shadow=shadow_id),
            hardware=AdaptedTbEngine(self.active, config.tb, config.clock,
                                     config.network, resync=self.resync))
        self.shadow.attach_engines(
            software=GeneralShadowEngine(self.shadow, peers=self.peer_ids),
            hardware=AdaptedTbEngine(self.shadow, config.tb, config.clock,
                                     config.network, resync=self.resync))
        for peer in self.peers:
            others = [pid for pid in self.peer_ids if pid != peer.process_id]
            notification_targets = [active_id, shadow_id] + others
            peer.attach_engines(
                software=GeneralPeerEngine(
                    peer, AcceptanceTest(config.at, self.rng, str(peer.process_id)),
                    component1_recipients=[active_id, shadow_id],
                    other_peers=others,
                    notification_recipients=notification_targets),
                hardware=AdaptedTbEngine(peer, config.tb, config.clock,
                                         config.network, resync=self.resync))

    # ------------------------------------------------------------------
    def process_list(self) -> List[FtProcess]:
        """All processes: active, shadow, then the peers in id order."""
        return [self.active, self.shadow] + self.peers

    def inject_software_fault(self, plan: SoftwareFaultPlan) -> None:
        """Arm the guarded component's design fault."""
        injector = SoftwareFaultInjector(self.sim, self.low_version, plan,
                                         self.trace)
        injector.arm()
        self.injectors.append(injector)

    def inject_crash(self, plan: HardwareFaultPlan) -> None:
        """Arm a node crash (and restart)."""
        injector = HardwareFaultInjector(self.sim, self.nodes[plan.node_id],
                                         plan, self.trace)
        injector.arm()
        self.injectors.append(injector)

    def start(self) -> None:
        """Start every process.  Idempotent."""
        if self._started:
            return
        self._started = True
        for proc in self.process_list():
            proc.start()

    def run(self, until: Optional[float] = None) -> None:
        """Start (if needed) and run to ``until`` (default: horizon)."""
        self.start()
        self.sim.run(until=until if until is not None else self.config.horizon)


def build_general_system(config: Optional[GeneralSystemConfig] = None,
                         **overrides) -> GeneralSystem:
    """Build a generalized system (keyword overrides applied to the
    config first)."""
    base = config if config is not None else GeneralSystemConfig()
    if overrides:
        base = dataclasses.replace(base, **overrides)
    return GeneralSystem(base)
