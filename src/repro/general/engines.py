"""Generalized MDCD engines for arbitrary peer counts, with
contamination provenance.

The paper's system model fixes three processes "for simplicity and
clarity" and notes that the restriction has since been removed ("we have
recently extended the MDCD approach by removing the architectural
restrictions on the underlying system", citing the authors' follow-up
[5]).  This package implements that generalization for one guarded
component escorted by its shadow among ``K >= 1`` high-confidence peers,
with peer-to-peer traffic so potential contamination propagates
*transitively* through the interaction graph.

**Why the paper's algorithms are not enough here.**  In the
three-process chain topology, every process's contamination traces
through the validator of any "passed AT" it receives, so the paper's
*unconditional* dirty-bit reset on a notification is sound.  In a
general graph it is not: peer ``X`` can pass an acceptance test that
certifies only *its* slice of ``P1_act``'s messages while peer ``Y`` is
contaminated through a different slice — resetting ``Y``'s dirty bit on
``X``'s notification silently legitimizes ``Y``'s contamination (our
property-based tests found exactly this: the contamination then spreads
with clean flags and becomes unrecoverable).

The generalized engines therefore track **provenance**: every process
maintains ``taint_sn`` — the highest ``P1_act`` sequence number that
influenced its state, directly or transitively — and every dirty message
piggybacks its sender's taint.  A validation carries the bound ``B`` of
``P1_act`` sequence numbers it certifies; it cleans a process (and
validates a journal record) **iff the taint is at or below B**.  The
three-process protocols are the special case where coverage always
holds.
"""

from __future__ import annotations

from typing import List, Optional

from ..app.acceptance import AcceptanceTest
from ..app.workload import Action
from ..messages.message import Message
from ..mdcd.modified import (
    ModifiedActiveEngine,
    ModifiedPeerEngine,
    ModifiedShadowEngine,
)
from ..mdcd.recovery import TakeoverEngine
from ..types import CheckpointKind, MessageKind, ProcessId, Role

P1ACT = ProcessId(Role.ACTIVE_1.value)


def route(stimulus: int, targets: List[ProcessId]) -> ProcessId:
    """Deterministic stimulus-based routing (shared by the active and
    shadow so their message streams stay aligned)."""
    return targets[stimulus % len(targets)]


def _max_bound(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)


class ProvenanceMixin:
    """Provenance tracking shared by the generalized shadow and peers.

    ``taint_sn`` is the ``P1_act``-sequence-number frontier of the
    contamination influencing this process; every dirty message
    piggybacks its sender's frontier.  A validation with bound ``B``
    cleans a process — and validates records — **iff the relevant
    frontier is at or below B** (the fix for the unsound unconditional
    reset; see the module docstring).

    Sender-rollback hazards (a dirty sender re-executing past sends a
    receiver already baked in) are neutralised by the generalized
    stack's *piecewise-deterministic replay* assumption: re-execution
    regenerates the identical per-destination message stream, which
    receivers deduplicate by ``(sender, receiver, dsn)``.  Anything the
    receiver has not baked in stays unacknowledged (deferred acks) and
    is re-sent from checkpointed unacked sets.
    """

    def message_bound(self, message: Message) -> Optional[int]:
        """The ``P1_act``-sequence-number bound of a message's
        contamination: its own ``sn`` for ``P1_act`` messages, the
        piggybacked taint otherwise."""
        if message.sender == P1ACT:
            return message.sn
        return message.taint_sn

    def covered(self, bound: Optional[int]) -> bool:
        """Whether a validation with bound ``bound`` certifies this
        process's entire contamination frontier."""
        if self.mdcd.taint_sn is None:
            return True
        return bound is not None and self.mdcd.taint_sn <= bound

    def validated_at_receipt(self, message: Message) -> bool:
        """Whether an incoming message is already covered by this
        process's valid bound (``vr``)."""
        if message.dirty_bit in (0, None):
            return True
        bound = self.message_bound(message)
        return (bound is not None and self.mdcd.vr is not None
                and bound <= self.mdcd.vr)

    def apply_validation(self, bound: Optional[int]) -> bool:
        """Apply a validation event: advance ``vr``, validate records
        whose provenance the bound covers, clear the taint iff covered,
        and recompute the dirty bit.  Returns whether a dirty state was
        cleaned."""
        self.mdcd.vr = _max_bound(self.mdcd.vr, bound)
        for journal in (self.process.journal_sent, self.process.journal_recv):
            for rec in journal.records(validated=False):
                rec_bound = rec.sn if rec.sender == P1ACT else rec.taint_sn
                if rec.sent_dirty == 0 or (
                        rec_bound is not None and bound is not None
                        and rec_bound <= bound):
                    rec.validated = True
        was_dirty = self.mdcd.dirty_bit == 1
        if was_dirty and self.covered(bound):
            self.mdcd.taint_sn = None
            self.set_dirty(0, reason="passed-at-covered")
            self._validate_everything()
            self.process.flush_deferred_acks()
            return True
        if was_dirty:
            self.process.counters.bump("passed_at.uncovered")
        self.process.flush_deferred_acks()
        return False

    def certify_own_state(self) -> Optional[int]:
        """My own acceptance test passed: my entire state — hence every
        influence up to my taint frontier — is certified.  Returns the
        bound to broadcast."""
        bound = _max_bound(self.mdcd.msg_sn_p1act or None, self.mdcd.taint_sn)
        self.mdcd.taint_sn = None
        self.mdcd.vr = _max_bound(self.mdcd.vr, bound)
        self.set_dirty(0, reason="own-at")
        self._validate_everything()
        self.process.flush_deferred_acks()
        return bound

    def _validate_everything(self) -> None:
        """A fully clean state reflects only valid messages."""
        for journal in (self.process.journal_sent, self.process.journal_recv):
            for rec in journal.records(validated=False):
                rec.validated = True

    def receive_app(self, message: Message) -> None:
        """Shared incoming-application handling with provenance."""
        valid_now = self.validated_at_receipt(message)
        if not valid_now:
            if self.mdcd.dirty_bit == 0:
                self.process.take_volatile_checkpoint(
                    CheckpointKind.TYPE_1, meta={"trigger": message.describe()})
                self.set_dirty(1, reason="dirty-receive")
            self.mdcd.taint_sn = _max_bound(self.mdcd.taint_sn,
                                            self.message_bound(message))
        if message.sender == P1ACT and message.sn is not None:
            self.mdcd.msg_sn_p1act = message.sn
        self.process.apply_app_message(message, validated=valid_now)


class GeneralActiveEngine(ModifiedActiveEngine):
    """``P1_act`` addressing one of ``K`` peers per internal message.

    Its own sends carry their sequence number as provenance (its sn
    counter upper-bounds any taint it could itself have absorbed); the
    pseudo dirty bit is reset only by validations whose bound covers its
    last allocated sequence number — the precise form of the paper's
    unconditional reset.
    """

    variant = "mdcd-general"

    def __init__(self, process, at: AcceptanceTest,
                 peers: List[ProcessId], shadow: ProcessId) -> None:
        super().__init__(process, at, peer=peers[0], shadow=shadow)
        self.peers = list(peers)

    def on_send_internal(self, action: Action) -> None:
        """Route the internal send to the stimulus-selected peer."""
        self.peer = route(action.stimulus, self.peers)
        super().on_send_internal(action)

    def on_send_external(self, action: Action) -> None:
        """AT-test; on success broadcast the validation to the shadow
        and every peer."""
        payload = self.process.component.produce_external(action.stimulus)
        if not self.run_acceptance_test(payload):
            self.process.request_software_recovery(
                Message(kind=MessageKind.EXTERNAL, sender=self.process.process_id,
                        receiver=ProcessId("DEVICE"), payload=payload,
                        corrupt=payload.corrupt,
                        msg_id=self.process.msg_ids.allocate()))
            return
        self.set_pseudo_dirty(0, reason="own-at")
        self.process.sn.allocate()
        self.validate_knowledge(p1act_sn=self.process.sn.current)
        self.process.send_external(payload, validated=True)
        self.process.send_passed_at([self.shadow] + self.peers,
                                    msg_sn=self.process.sn.current,
                                    ndc=self.process.current_ndc())
        self._notify_validation(type2=True)

    def on_passed_at(self, message: Message) -> None:
        # The paper's unconditional pseudo reset: the next pseudo
        # checkpoint re-anchors *after* every send made so far, so no
        # send of P1_act can be rolled back past once any validation is
        # processed — receivers may therefore bake covered messages in.
        """The paper's unconditional pseudo reset (see inline note)."""
        if not self.ndc_matches(message):
            self.process.counters.bump("passed_at.ndc_mismatch")
            return
        self.set_pseudo_dirty(0, reason="passed-at")
        self.validate_knowledge(p1act_sn=message.sn)
        self._notify_validation(type2=True)


class GeneralShadowEngine(ProvenanceMixin, ModifiedShadowEngine):
    """The shadow, suppressing copies addressed like the active's and
    tracking provenance of what it applies."""

    variant = "mdcd-general"

    def __init__(self, process, peers: List[ProcessId]) -> None:
        super().__init__(process)
        self.peers = list(peers)

    def _suppress(self, action: Action, kind: MessageKind) -> None:
        """Log the would-be message with its routed recipients."""
        produce = (self.process.component.produce_internal
                   if kind is MessageKind.INTERNAL
                   else self.process.component.produce_external)
        payload = produce(action.stimulus)
        sn = self.process.sn.allocate()
        if kind is MessageKind.INTERNAL:
            recipients = [route(action.stimulus, self.peers)]
        else:
            recipients = [ProcessId("DEVICE")]
        suppressed = Message(kind=kind, sender=self.process.process_id,
                             receiver=recipients[0], payload=payload, sn=sn,
                             dirty_bit=self.mdcd.dirty_bit,
                             corrupt=payload.corrupt,
                             msg_id=self.process.msg_ids.allocate())
        self.process.msg_log.append(sn, suppressed, recipients=recipients)
        self.process.counters.bump("suppressed")

    def on_passed_at(self, message: Message) -> None:
        """Ndc-gated validation with provenance-aware cleaning."""
        if not self.ndc_matches(message):
            self.process.counters.bump("passed_at.ndc_mismatch")
            return
        if message.sn is not None:
            self.process.msg_log.reclaim_up_to(message.sn)
        cleaned = self.apply_validation(message.sn)
        self._notify_validation(type2=cleaned)

    def on_incoming_app(self, message: Message) -> None:
        """Provenance-aware receive (taint absorption, Type-1 anchoring)."""
        self.receive_app(message)


class GeneralPeerEngine(ProvenanceMixin, ModifiedPeerEngine):
    """A peer interacting with the guarded pair *and* other peers.

    Even-stimulus internal sends go to the component-1 pair (the paper's
    ``P2`` behaviour); odd-stimulus sends go to a stimulus-routed fellow
    peer — the edge along which contamination propagates transitively,
    carrying its provenance.
    """

    variant = "mdcd-general"

    def __init__(self, process, at: AcceptanceTest,
                 component1_recipients: List[ProcessId],
                 other_peers: List[ProcessId],
                 notification_recipients: List[ProcessId]) -> None:
        super().__init__(process, at,
                         component1_recipients=component1_recipients)
        self.other_peers = list(other_peers)
        self.notification_recipients = list(notification_recipients)

    def on_send_internal(self, action: Action) -> None:
        """Route: even stimuli to the component-1 pair, odd to a fellow
        peer, with taint piggybacked on dirty sends."""
        payload = self.process.component.produce_internal(action.stimulus)
        dirty = self.mdcd.dirty_bit
        if action.stimulus % 2 == 0 or not self.other_peers:
            recipients = list(self.component1_recipients)
        else:
            recipients = [route(action.stimulus // 2, self.other_peers)]
        self.process.send_internal(
            payload, recipients, sn=None, dirty_bit=dirty,
            validated=(dirty == 0), ndc=self.process.current_ndc(),
            taint_sn=self.mdcd.taint_sn if dirty else None)

    def on_send_external(self, action: Action) -> None:
        """AT-test while dirty; on success certify the whole taint
        frontier and broadcast its bound."""
        payload = self.process.component.produce_external(action.stimulus)
        if self.mdcd.dirty_bit == 1:
            if not self.run_acceptance_test(payload):
                self.process.request_software_recovery(
                    Message(kind=MessageKind.EXTERNAL,
                            sender=self.process.process_id,
                            receiver=ProcessId("DEVICE"), payload=payload,
                            corrupt=payload.corrupt,
                            msg_id=self.process.msg_ids.allocate()))
                return
            bound = self.certify_own_state()
            self.process.send_external(payload, validated=True)
            self.process.send_passed_at(
                list(self.notification_recipients), msg_sn=bound,
                ndc=self.process.current_ndc())
            self._notify_validation(type2=True)
        else:
            self.process.send_external(payload, validated=True)

    def on_passed_at(self, message: Message) -> None:
        """Ndc-gated validation with provenance-aware cleaning."""
        if not self.ndc_matches(message):
            self.process.counters.bump("passed_at.ndc_mismatch")
            return
        if message.sn is not None:
            self.mdcd.msg_sn_p1act = max(self.mdcd.msg_sn_p1act, message.sn)
        cleaned = self.apply_validation(message.sn)
        self._notify_validation(type2=cleaned)

    def on_incoming_app(self, message: Message) -> None:
        """Provenance-aware receive (taint absorption, Type-1 anchoring)."""
        self.receive_app(message)


class GeneralTakeoverEngine(TakeoverEngine):
    """The promoted shadow with the active's routing behaviour."""

    variant = "mdcd-general-takeover"

    def __init__(self, process, peers: List[ProcessId]) -> None:
        super().__init__(process, peer=peers[0])
        self.peers = list(peers)

    def on_send_internal(self, action: Action) -> None:
        """Post-takeover: clean routed sends to the peers."""
        payload = self.process.component.produce_internal(action.stimulus)
        sn = self.process.sn.allocate()
        self.process.send_internal(payload,
                                   [route(action.stimulus, self.peers)],
                                   sn=sn, dirty_bit=0, validated=True,
                                   ndc=self.process.current_ndc())
