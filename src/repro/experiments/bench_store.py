"""Accumulating perf-trajectory documents for the bench recorders.

``BENCH_kernel.json`` and ``BENCH_warmstart.json`` share one on-disk
shape::

    {"bench": <name>, "latest": <full record>, "trajectory": [entry...]}

``latest`` is the complete most-recent record; ``trajectory`` holds one
compact per-run entry (each recorder defines its own) so the committed
artifact accumulates a performance history instead of forgetting every
run but the last.  Legacy single-record files are migrated in place:
the bare record becomes ``latest`` and seeds the trajectory with one
entry stamped from the file's mtime — no re-run needed.
"""

from __future__ import annotations

import datetime
import json
import os
from typing import Any, Callable, Dict, Optional

#: Builds a compact trajectory entry from a full record; must accept a
#: ``recorded_at`` keyword for mtime-stamped legacy migration.
EntryFn = Callable[..., Dict[str, Any]]


def utc_stamp(moment: Optional[datetime.datetime] = None) -> str:
    """ISO-8601 UTC second-resolution stamp (now, unless given)."""
    if moment is None:
        moment = datetime.datetime.now(datetime.timezone.utc)
    return moment.strftime("%Y-%m-%dT%H:%M:%SZ")


def file_stamp(path: str) -> str:
    """The file's mtime as a :func:`utc_stamp` — the best available
    guess at when a legacy record was actually benched."""
    mtime = datetime.datetime.fromtimestamp(os.path.getmtime(path),
                                            datetime.timezone.utc)
    return utc_stamp(mtime)


def _load(path: str) -> Any:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def _dump(document: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(document, indent=2, sort_keys=True) + "\n")


def write_record(record: Dict[str, Any], path: str, *, bench: str,
                 entry: EntryFn, legacy_marker: str) -> None:
    """Append ``record`` to the perf trajectory at ``path``.

    An existing trajectory document keeps its history; a legacy bare
    record (recognized by ``legacy_marker`` among its keys) becomes the
    first trajectory entry, stamped with the file's mtime.
    """
    document: Dict[str, Any] = {"bench": bench, "latest": record,
                                "trajectory": []}
    existing = _load(path)
    if isinstance(existing, dict):
        if isinstance(existing.get("trajectory"), list):
            document["trajectory"] = list(existing["trajectory"])
        elif legacy_marker in existing:
            document["trajectory"] = [
                entry(existing, recorded_at=file_stamp(path))]
    document["trajectory"].append(entry(record))
    _dump(document, path)


def read_latest(path: str, *, legacy_marker: str) -> Optional[Dict[str, Any]]:
    """The most recent full record at ``path`` (handles both the
    trajectory document and a legacy bare record); ``None`` if absent
    or unreadable."""
    existing = _load(path)
    if not isinstance(existing, dict):
        return None
    if "latest" in existing:
        return existing["latest"]
    return existing if legacy_marker in existing else None


def migrate_legacy(path: str, *, bench: str, entry: EntryFn,
                   legacy_marker: str) -> bool:
    """Rewrite a legacy bare-record file into the trajectory format in
    place — no bench re-run; the old record becomes ``latest`` and the
    sole (mtime-stamped) trajectory entry.  Returns whether anything
    was migrated (``False`` for missing, unreadable, or already
    migrated files)."""
    existing = _load(path)
    if (not isinstance(existing, dict) or "latest" in existing
            or legacy_marker not in existing):
        return False
    stamp = file_stamp(path)
    _dump({"bench": bench, "latest": existing,
           "trajectory": [entry(existing, recorded_at=stamp)]}, path)
    return True
