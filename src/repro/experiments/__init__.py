"""Experiment harnesses: the paper's figures and table, plus ablations.

* :mod:`~repro.experiments.scenarios` — executable reproductions of the
  illustrative Figures 1, 2, 3, 4 and 6.
* :mod:`~repro.experiments.table1` — the original-vs-adapted TB
  comparison of Table 1, measured.
* :mod:`~repro.experiments.figure7` — the headline rollback-distance
  sweep (E[D_co] vs E[D_wt]).
* :mod:`~repro.experiments.ablations` — removals of each load-bearing
  design choice, plus the regime study of the Figure 7 gap.
"""

from .ablations import (
    AblationRow,
    ablate_at_coverage,
    ablate_blocking,
    ablate_dirty_fraction,
    ablate_interval,
    ablate_ndc_gating,
    ablate_swap,
    format_ablation,
)
from .figure7 import Figure7Config, Figure7Point, format_figure7, run_figure7, run_point
from .overhead import (
    OverheadConfig,
    OverheadObservation,
    format_overhead,
    measure_scheme,
    run_overhead,
)
from .report import generate_report
from .reporting import format_kv_block, format_table, log_series_bar
from .runner import CampaignResult, replication_seeds, run_campaign
from .scenarios import (
    PairSystem,
    ScenarioResult,
    figure1_checkpoint_pattern,
    figure2_tb_blocking,
    figure3_modified_pattern,
    figure4a_naive_loss,
    figure4b_in_transit_notification,
    figure6_coordination_cases,
    run_all_scenarios,
)
from .table1 import Table1Config, format_table1, run_table1
from .timeline import render_timeline

__all__ = [
    "AblationRow",
    "CampaignResult",
    "Figure7Config",
    "Figure7Point",
    "OverheadConfig",
    "OverheadObservation",
    "PairSystem",
    "ScenarioResult",
    "Table1Config",
    "ablate_at_coverage",
    "ablate_blocking",
    "ablate_dirty_fraction",
    "ablate_interval",
    "ablate_ndc_gating",
    "ablate_swap",
    "figure1_checkpoint_pattern",
    "figure2_tb_blocking",
    "figure3_modified_pattern",
    "figure4a_naive_loss",
    "figure4b_in_transit_notification",
    "figure6_coordination_cases",
    "format_ablation",
    "format_figure7",
    "format_overhead",
    "format_kv_block",
    "format_table",
    "format_table1",
    "generate_report",
    "log_series_bar",
    "measure_scheme",
    "replication_seeds",
    "run_all_scenarios",
    "run_campaign",
    "run_figure7",
    "run_overhead",
    "run_point",
    "run_table1",
    "render_timeline",
]
