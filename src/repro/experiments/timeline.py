"""ASCII timeline rendering — the paper's Figures 1/3 drawn from traces.

The paper's protocol figures show per-process execution lanes with
shaded potentially-contaminated intervals, checkpoint markers, and
acceptance-test events.  :func:`render_timeline` reconstructs exactly
that picture from a run's trace:

* ``░`` — interval during which the process's (pseudo) dirty bit is 0;
* ``▓`` — potentially contaminated interval (the paper's shading);
* ``1`` / ``2`` / ``P`` — Type-1 / Type-2 / pseudo volatile checkpoints
  (the paper's filled/hollow rectangles);
* ``S`` — a completed stable-storage checkpoint establishment;
* ``A`` — an acceptance test (``!`` if it failed);
* ``X`` / ``R`` — node crash / recovery rollback affecting the lane.

Markers overwrite shading at their instant; when several land in the
same column the most salient (failure > recovery > checkpoint > AT)
wins.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..sim.trace import TraceRecorder
from ..types import ProcessId

#: Rendering priority (higher wins a shared column).
_PRIORITY = {"!": 6, "X": 5, "R": 4, "S": 3, "1": 2, "2": 2, "P": 2, "A": 1}

_CKPT_MARKS = {"type-1": "1", "type-2": "2", "pseudo": "P"}


def _place(lane: List[str], priority: List[int], column: int, mark: str) -> None:
    if 0 <= column < len(lane):
        rank = _PRIORITY.get(mark, 0)
        if rank >= priority[column]:
            lane[column] = mark
            priority[column] = rank


def render_timeline(trace: TraceRecorder, processes: Sequence[ProcessId],
                    since: float, until: float, width: int = 100,
                    pseudo_for: Optional[ProcessId] = None) -> str:
    """Render per-process lanes over ``[since, until]``.

    ``pseudo_for`` names the process whose contamination shading should
    follow its *pseudo* dirty bit (the paper's dashed line for
    ``P1_act`` in Fig. 3); other processes shade by the dirty bit.
    """
    if until <= since:
        raise ValueError("empty timeline window")
    scale = width / (until - since)

    def column(t: float) -> int:
        return min(width - 1, max(0, int((t - since) * scale)))

    lanes: Dict[ProcessId, List[str]] = {}
    priorities: Dict[ProcessId, List[int]] = {}
    for pid in processes:
        # Shade from confidence transitions: walk the full trace so the
        # state at `since` is known.
        bit_name = "pseudo" if pid == pseudo_for else "dirty"
        shading = []
        dirty = False
        cursor = since
        for rec in trace.records("confidence.", pid):
            if rec.data.get("bit") != bit_name:
                continue
            now_dirty = rec.category.endswith(".dirty")
            if rec.time <= since:
                dirty = now_dirty
                continue
            if rec.time > until:
                break
            shading.append((cursor, rec.time, dirty))
            cursor, dirty = rec.time, now_dirty
        shading.append((cursor, until, dirty))
        lane = []
        for (start, end, is_dirty) in shading:
            lane.extend(["▓" if is_dirty else "░"]
                        * (column(end) - len(lane) + (1 if end >= until else 0)))
        lane = (lane + ["░"] * width)[:width]
        lanes[pid] = lane
        priorities[pid] = [0] * width

    for rec in trace.records(since=since, until=until):
        pid = rec.process
        if pid not in lanes:
            continue
        lane, priority = lanes[pid], priorities[pid]
        if rec.category.startswith("checkpoint.volatile."):
            kind = rec.category.rsplit(".", 1)[-1]
            _place(lane, priority, column(rec.time), _CKPT_MARKS.get(kind, "?"))
        elif rec.category == "tb.establish.done":
            _place(lane, priority, column(rec.time), "S")
        elif rec.category == "at.pass":
            _place(lane, priority, column(rec.time), "A")
        elif rec.category == "at.fail":
            _place(lane, priority, column(rec.time), "!")
        elif rec.category.startswith("recovery.rollback"):
            _place(lane, priority, column(rec.time), "R")
    for rec in trace.records("fault.crash", since=since, until=until):
        node = rec.data.get("node")
        for pid, lane in lanes.items():
            # Crash markers are node-level; annotate every lane whose
            # process the trace later shows rolling back at that node's
            # restart — simplest faithful choice: mark all lanes.
            _place(lane, priorities[pid], column(rec.time), "X")

    label_width = max(len(str(pid)) for pid in processes) + 1
    lines = [f"t ∈ [{since:.1f}, {until:.1f}]  "
             f"(░ clean  ▓ potentially contaminated  1/2/P volatile ckpt  "
             f"S stable ckpt  A acceptance test  ! AT failure  R rollback  "
             f"X crash)"]
    for pid in processes:
        lines.append(f"{str(pid):>{label_width}} |{''.join(lanes[pid])}|")
    return "\n".join(lines)
