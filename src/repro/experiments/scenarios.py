"""Executable reproductions of the paper's illustrative figures.

Each ``figure*`` function builds the exact situation a figure depicts,
runs it, and returns a :class:`ScenarioResult` whose ``passed`` flag
says whether the paper's claim held:

* **Figure 1** — the original MDCD volatile-checkpoint pattern: Type-1
  and Type-2 checkpoints strictly alternate on high-confidence
  processes; ``P1_act`` never checkpoints.
* **Figure 2** — the original TB protocol violates consistency and
  recoverability *without* its blocking period, and satisfies both with
  it.
* **Figure 3** — the modified MDCD pattern: pseudo checkpoints appear
  on ``P1_act``, Type-2 checkpoints are gone.
* **Figure 4(a)** — the naive MDCD+TB combination loses ``P2``'s
  non-contaminated state: after a hardware fault followed by a software
  error the contamination is unrecoverable; the coordinated scheme
  recovers cleanly from the identical fault sequence.
* **Figure 4(b)** — with the mid-blocking content swap disabled, an
  in-transit "passed AT" notification leaves the stable line
  inconsistent/unrestorable; with the swap (Figure 6(b)) the line is
  clean.
* **Figure 6** — across every stable line the coordinated scheme
  establishes, validity-concerned consistency and recoverability hold,
  with all content cases (current state / volatile copy / swapped)
  exercised.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..analysis.global_state import stable_line
from ..analysis.invariants import Violation, check_line, check_system_line, summarize_violations
from ..app.component import ApplicationComponent
from ..app.faults import HardwareFaultPlan, SoftwareFaultPlan
from ..app.versions import HighConfidenceVersion
from ..app.workload import Action, ActionKind, WorkloadConfig, WorkloadDriver, generate_actions
from ..coordination.scheme import Scheme, System, SystemConfig, build_system
from ..host import FtProcess, IncarnationCounter
from ..sim.clock import ClockConfig
from ..sim.events import EventPriority
from ..sim.kernel import Simulator
from ..sim.network import Network, NetworkConfig
from ..sim.node import Node
from ..sim.rng import RngRegistry
from ..sim.trace import TraceRecorder
from ..tb.blocking import TbConfig
from ..tb.hardware_recovery import HardwareRecoveryCoordinator
from ..tb.original import OriginalTbEngine
from ..types import NodeId, ProcessId, Role


@dataclasses.dataclass
class ScenarioResult:
    """Outcome of one figure reproduction."""

    name: str
    passed: bool
    details: str
    data: Dict = dataclasses.field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        mark = "OK " if self.passed else "FAIL"
        return f"[{mark}] {self.name}: {self.details}"


def _manual_action(stimulus: int = 7, kind: ActionKind = ActionKind.SEND_INTERNAL,
                   index: int = 10_000_000) -> Action:
    """A synthetic workload action for manually-driven scenarios."""
    return Action(index=index, kind=kind, gap=0.0, stimulus=stimulus)


# ---------------------------------------------------------------------------
# Figure 1 / Figure 3 — checkpoint patterns
# ---------------------------------------------------------------------------
def _checkpoint_sequence(system: System, process_id: str) -> List[str]:
    kinds = []
    for rec in system.trace.records("checkpoint.volatile"):
        if str(rec.process) == process_id:
            kinds.append(rec.category.rsplit(".", 1)[-1])
    return kinds


def _alternates(kinds: List[str], first: str, second: str) -> bool:
    expected = first
    for kind in kinds:
        if kind != expected:
            return False
        expected = second if expected == first else first
    return True


def figure1_checkpoint_pattern(seed: int = 11, horizon: float = 6000.0) -> ScenarioResult:
    """Original MDCD: Type-1/Type-2 alternation, no active checkpoints."""
    system = build_system(SystemConfig(
        scheme=Scheme.MDCD_ONLY, seed=seed, horizon=horizon,
        workload1=WorkloadConfig(internal_rate=0.02, external_rate=0.004,
                                 step_rate=0.01, horizon=horizon),
        workload2=WorkloadConfig(internal_rate=0.01, external_rate=0.004,
                                 step_rate=0.01, horizon=horizon)))
    system.run()
    seq_act = _checkpoint_sequence(system, Role.ACTIVE_1.value)
    seq_sdw = _checkpoint_sequence(system, Role.SHADOW_1.value)
    seq_p2 = _checkpoint_sequence(system, Role.PEER_2.value)
    ok = (not seq_act
          and len(seq_p2) >= 4 and _alternates(seq_p2, "type-1", "type-2")
          and len(seq_sdw) >= 4 and _alternates(seq_sdw, "type-1", "type-2"))
    return ScenarioResult(
        name="Figure 1 (original MDCD checkpoint pattern)", passed=ok,
        details=(f"P1_act checkpoints={len(seq_act)} (expected 0); "
                 f"P2 sequence alternates Type-1/Type-2: "
                 f"{_alternates(seq_p2, 'type-1', 'type-2')} over {len(seq_p2)}; "
                 f"P1_sdw alternates: {_alternates(seq_sdw, 'type-1', 'type-2')} "
                 f"over {len(seq_sdw)}"),
        data={"P1_act": seq_act, "P1_sdw": seq_sdw, "P2": seq_p2,
              "system": system})


def figure3_modified_pattern(seed: int = 11, horizon: float = 6000.0) -> ScenarioResult:
    """Modified MDCD: pseudo checkpoints on P1_act, Type-2 eliminated."""
    system = build_system(SystemConfig(
        scheme=Scheme.COORDINATED, seed=seed, horizon=horizon,
        tb=TbConfig(interval=120.0),
        workload1=WorkloadConfig(internal_rate=0.02, external_rate=0.004,
                                 step_rate=0.01, horizon=horizon),
        workload2=WorkloadConfig(internal_rate=0.01, external_rate=0.004,
                                 step_rate=0.01, horizon=horizon)))
    system.run()
    seq_act = _checkpoint_sequence(system, Role.ACTIVE_1.value)
    seq_sdw = _checkpoint_sequence(system, Role.SHADOW_1.value)
    seq_p2 = _checkpoint_sequence(system, Role.PEER_2.value)
    no_type2 = all("type-2" not in s for s in (seq_act, seq_sdw, seq_p2))
    ok = (no_type2 and seq_act and all(k == "pseudo" for k in seq_act)
          and seq_p2 and all(k == "type-1" for k in seq_p2))
    return ScenarioResult(
        name="Figure 3 (modified MDCD checkpoint pattern)", passed=ok,
        details=(f"pseudo checkpoints on P1_act: {len(seq_act)}; "
                 f"Type-2 anywhere: {not no_type2}; "
                 f"P2 Type-1 count: {len(seq_p2)}"),
        data={"P1_act": seq_act, "P1_sdw": seq_sdw, "P2": seq_p2,
              "system": system})


# ---------------------------------------------------------------------------
# Figure 2 — TB blocking necessity (two plain processes)
# ---------------------------------------------------------------------------
class PairSystem:
    """Two plain processes exchanging messages under the original TB
    protocol — the paper's Fig. 2 setting (no MDCD involved)."""

    def __init__(self, seed: int, tb: TbConfig, clock: ClockConfig,
                 net: NetworkConfig, message_rate: float, horizon: float,
                 stable_history: int = 1000) -> None:
        self.sim = Simulator()
        self.rng = RngRegistry(seed)
        self.trace = TraceRecorder()
        self.network = Network(self.sim, net, self.rng)
        self.incarnation = IncarnationCounter()
        self.horizon = horizon
        workload = WorkloadConfig(internal_rate=message_rate, external_rate=0.0,
                                  step_rate=message_rate / 10.0, horizon=horizon)
        self.processes: List[FtProcess] = []
        for name in ("Pa", "Pb"):
            node = Node(NodeId(f"N_{name}"), self.sim, clock, self.rng,
                        stable_history=stable_history)
            actions = generate_actions(workload, self.rng, f"pair.{name}")
            proc = FtProcess(ProcessId(name), node, self.network,
                             ApplicationComponent(name, HighConfidenceVersion(name)),
                             WorkloadDriver(self.sim, actions, name),
                             self.incarnation, role=None, trace=self.trace)
            engine = OriginalTbEngine(proc, tb, clock, net)
            proc.attach_engines(software=None, hardware=engine)
            self.processes.append(proc)
        self.processes[0].default_peers = [self.processes[1].process_id]
        self.processes[1].default_peers = [self.processes[0].process_id]
        self.coordinator = HardwareRecoveryCoordinator(
            self.processes, self.incarnation, self.trace)
        self.coordinator.install()

    def process_list(self) -> List[FtProcess]:
        """Both processes."""
        return self.processes

    def run(self) -> None:
        """Start the pair and run to the horizon."""
        for proc in self.processes:
            proc.start()
        self.sim.run(until=self.horizon)

    def check_all_epochs(self) -> Tuple[int, List[Violation]]:
        """Check every common epoch line; returns (lines checked, violations)."""
        store_a = self.processes[0].node.stable
        store_b = self.processes[1].node.stable
        epochs = sorted(set(store_a.epochs(self.processes[0].process_id))
                        & set(store_b.epochs(self.processes[1].process_id)))
        violations: List[Violation] = []
        for epoch in epochs:
            line = {}
            for proc in self.processes:
                ckpt = proc.node.stable.at_epoch(proc.process_id, epoch)
                if ckpt is not None:
                    from ..analysis.global_state import view_from_checkpoint
                    line[proc.process_id] = view_from_checkpoint(ckpt)
            violations.extend(check_line(line, include_ground_truth=False))
        return len(epochs), violations


def figure2_tb_blocking(seed: int = 3, horizon: float = 400.0) -> ScenarioResult:
    """The original TB protocol's two mechanisms, each shown necessary.

    Three configurations over identical workloads:

    1. no blocking, no unacked-saving — both consistency (orphan
       messages straddling skewed checkpoint instants) and
       recoverability (in-transit messages) are violated, the paper's
       Fig. 2(a);
    2. blocking on, no unacked-saving — consistency holds but in-transit
       messages remain unrestorable: blocking alone buys only
       consistency (why Neves-Fuchs do not block for recoverability);
    3. the full protocol — both properties hold, Fig. 2(b).
    """
    clock = ClockConfig(delta=0.5, rho=1e-6)
    net = NetworkConfig(t_min=0.005, t_max=0.02)
    outcomes = {}
    for label, blocking, save_unacked in (("neither", False, False),
                                          ("blocking-only", True, False),
                                          ("full", True, True)):
        tb = TbConfig(interval=5.0, blocking_enabled=blocking,
                      save_unacked=save_unacked)
        pair = PairSystem(seed=seed, tb=tb, clock=clock, net=net,
                          message_rate=4.0, horizon=horizon)
        pair.run()
        lines, violations = pair.check_all_epochs()
        outcomes[label] = (lines, summarize_violations(violations))
    neither = outcomes["neither"][1]
    blocking_only = outcomes["blocking-only"][1]
    full_lines, full = outcomes["full"]
    ok = (neither.get("orphan-message", 0) > 0
          and neither.get("unrestorable-message", 0) > 0
          and blocking_only.get("orphan-message", 0) == 0
          and blocking_only.get("unrestorable-message", 0) > 0
          and not full and full_lines > 10)
    return ScenarioResult(
        name="Figure 2 (TB blocking and unacked-saving necessity)", passed=ok,
        details=(f"neither mechanism: {neither}; blocking only: "
                 f"{blocking_only}; full protocol: {full or 'clean'} over "
                 f"{full_lines} lines"),
        data=outcomes)


# ---------------------------------------------------------------------------
# Figure 4(a) — naive combination loses the non-contaminated state
# ---------------------------------------------------------------------------
def figure4a_naive_loss(seed: int = 13, horizon: float = 2500.0) -> ScenarioResult:
    """The same fault sequence (software fault activation, then a crash
    of P2's node, then a detected software error) under the naive
    combination and under the coordinated scheme."""
    def run(scheme: Scheme) -> System:
        system = build_system(SystemConfig(
            scheme=scheme, seed=seed, horizon=horizon,
            tb=TbConfig(interval=60.0),
            workload1=WorkloadConfig(internal_rate=0.05, external_rate=0.002,
                                     step_rate=0.02, horizon=horizon),
            workload2=WorkloadConfig(internal_rate=0.02, external_rate=0.001,
                                     step_rate=0.02, horizon=horizon)))
        system.inject_software_fault(SoftwareFaultPlan(activate_at=100.0))
        system.inject_crash(HardwareFaultPlan(node_id="N2", crash_at=400.0,
                                              repair_time=2.0))
        system.run()
        return system

    naive = run(Scheme.NAIVE)
    coordinated = run(Scheme.COORDINATED)
    naive_corrupt = naive.peer.component.state.corrupt
    coord_corrupt = coordinated.peer.component.state.corrupt
    naive_degraded = naive.trace.count("recovery.degraded_fallback") > 0
    both_detected = naive.sw_recovery.completed and coordinated.sw_recovery.completed
    ok = (both_detected and naive_corrupt and naive_degraded
          and not coord_corrupt
          and not coordinated.shadow.component.state.corrupt)
    return ScenarioResult(
        name="Figure 4(a) (naive combination loses non-contaminated state)",
        passed=ok,
        details=(f"software error detected in both: {both_detected}; "
                 f"naive P2 still contaminated: {naive_corrupt} "
                 f"(degraded rollback fallback: {naive_degraded}); "
                 f"coordinated P2 contaminated: {coord_corrupt}"),
        data={"naive_counters": naive.peer.counters.as_dict(),
              "coordinated_counters": coordinated.peer.counters.as_dict()})


# ---------------------------------------------------------------------------
# Figure 4(b) / 6(b) — in-transit "passed AT" vs the mid-blocking swap
# ---------------------------------------------------------------------------
def _run_in_transit_case(swap: bool, seed: int) -> Optional[Tuple[bool, Dict]]:
    """Build the Fig. 4(b) interleaving: P2 passes an AT after the
    shadow's checkpointing timer expired but before its own.  Returns
    (line_clean, info) or None if this seed's clock draw did not produce
    the required timer order."""
    horizon = 40.0
    config = SystemConfig(
        scheme=Scheme.COORDINATED if swap else Scheme.COORDINATED_NO_SWAP,
        seed=seed, horizon=horizon,
        clock=ClockConfig(delta=0.4, rho=1e-6),
        network=NetworkConfig(t_min=0.02, t_max=0.1),
        tb=TbConfig(interval=10.0),
        workload1=WorkloadConfig(internal_rate=1e-9, external_rate=1e-9,
                                 step_rate=0.01, horizon=horizon),
        workload2=WorkloadConfig(internal_rate=1e-9, external_rate=1e-9,
                                 step_rate=0.01, horizon=horizon),
        stable_history=100)
    system = build_system(config)
    system.start()
    sim = system.sim
    active, shadow, peer = system.active, system.shadow, system.peer

    # t=1: P1_act sends an internal message -> P2 becomes dirty.
    sim.schedule_at(1.0, lambda: active.software.on_send_internal(_manual_action(3)),
                    priority=EventPriority.ACTION, label="scn:act-int")
    # t=2: P2 sends an internal message while dirty -> the shadow (and
    # P1_act) receive a dirty-flagged message; the shadow becomes dirty.
    sim.schedule_at(2.0, lambda: peer.software.on_send_internal(_manual_action(4)),
                    priority=EventPriority.ACTION, label="scn:p2-int")

    # Around t=10 the checkpointing timers expire (skewed by up to
    # delta).  Poll for the Fig. 4(b) window: the shadow is blocking for
    # epoch 1 while P2 has not yet begun its own establishment; then P2
    # passes an AT, putting a "passed AT" notification in transit.
    fired = {"done": False}

    def poll():
        if fired["done"]:
            return
        shadow_pending = shadow.hardware._pending
        if (shadow_pending is not None and shadow_pending.epoch == 1
                and peer.hardware.ndc == 0 and not peer.hardware.in_blocking
                and peer.mdcd.dirty_bit == 1):
            fired["done"] = True
            peer.software.on_send_external(
                _manual_action(5, kind=ActionKind.SEND_EXTERNAL))
            return
        if sim.now < 12.5:
            sim.schedule_after(0.005, poll, priority=EventPriority.CONTROL,
                               label="scn:poll")

    sim.schedule_at(9.0, poll, priority=EventPriority.CONTROL, label="scn:poll0")
    system.run(until=horizon)
    if not fired["done"]:
        return None
    line = stable_line(system, epoch=1)
    if len(line) < 3:
        return None
    violations = check_system_line(line, include_ground_truth=False)
    info = {
        "violations": summarize_violations(violations),
        "shadow_content": line[shadow.process_id].meta,
        "swapped": system.trace.count("tb.establish.done") and any(
            rec.data.get("swapped") for rec in
            system.trace.records("tb.establish.done", shadow.process_id)),
    }
    return (len(violations) == 0, info)


def figure4b_in_transit_notification(max_seeds: int = 40) -> ScenarioResult:
    """Find a clock draw exhibiting the Fig. 4(b) window, then compare
    swap-disabled (violation expected) against swap-enabled (clean)."""
    for seed in range(max_seeds):
        no_swap = _run_in_transit_case(swap=False, seed=seed)
        if no_swap is None:
            continue
        clean_no_swap, info_off = no_swap
        if clean_no_swap:
            # The window occurred but produced no violation (e.g. the
            # notification landed before the shadow's expiry); keep
            # searching for a violating draw.
            continue
        with_swap = _run_in_transit_case(swap=True, seed=seed)
        if with_swap is None:
            continue
        clean_swap, info_on = with_swap
        ok = (not clean_no_swap) and clean_swap and bool(info_on.get("swapped"))
        return ScenarioResult(
            name="Figure 4(b)/6(b) (in-transit passed-AT vs mid-blocking swap)",
            passed=ok,
            details=(f"seed {seed}: swap disabled -> violations "
                     f"{info_off['violations']}; swap enabled -> clean line, "
                     f"content swapped: {info_on.get('swapped')}"),
            data={"seed": seed, "off": info_off, "on": info_on})
    return ScenarioResult(
        name="Figure 4(b)/6(b) (in-transit passed-AT vs mid-blocking swap)",
        passed=False,
        details=f"no seed in 0..{max_seeds - 1} produced the Fig. 4(b) window",
        data={})


# ---------------------------------------------------------------------------
# Figure 6 — every coordinated stable line is valid
# ---------------------------------------------------------------------------
def figure6_coordination_cases(seed: int = 29, horizon: float = 4000.0) -> ScenarioResult:
    """Audit every stable line the coordinated scheme establishes and
    tally the checkpoint-content cases of paper Fig. 6."""
    system = build_system(SystemConfig(
        scheme=Scheme.COORDINATED, seed=seed, horizon=horizon,
        tb=TbConfig(interval=40.0),
        workload1=WorkloadConfig(internal_rate=0.05, external_rate=0.01,
                                 step_rate=0.02, horizon=horizon),
        workload2=WorkloadConfig(internal_rate=0.03, external_rate=0.01,
                                 step_rate=0.02, horizon=horizon),
        stable_history=1000))
    system.run()
    procs = system.process_list()
    common = None
    for proc in procs:
        epochs = set(proc.node.stable.epochs(proc.process_id))
        common = epochs if common is None else (common & epochs)
    violations: List[Violation] = []
    content_counts: Dict[str, int] = {}
    lines_checked = 0
    for epoch in sorted(common or ()):
        line = stable_line(system, epoch=epoch)
        if len(line) < 3:
            continue
        lines_checked += 1
        violations.extend(check_system_line(line, include_ground_truth=True))
        for view in line.values():
            if view.meta.get("genesis"):
                continue
        for proc in procs:
            ckpt = proc.node.stable.at_epoch(proc.process_id, epoch)
            if ckpt is not None and ckpt.content is not None and epoch > 0:
                content_counts[ckpt.content.value] = \
                    content_counts.get(ckpt.content.value, 0) + 1
    ok = (lines_checked > 20 and not violations
          and content_counts.get("current-state", 0) > 0
          and content_counts.get("volatile-copy", 0) > 0)
    return ScenarioResult(
        name="Figure 6 (coordinated stable lines satisfy the properties)",
        passed=ok,
        details=(f"{lines_checked} lines checked, {len(violations)} violations "
                 f"({summarize_violations(violations)}); content cases: "
                 f"{content_counts}"),
        data={"contents": content_counts})


def run_all_scenarios() -> List[ScenarioResult]:
    """Every figure reproduction, in paper order."""
    return [
        figure1_checkpoint_pattern(),
        figure2_tb_blocking(),
        figure3_modified_pattern(),
        figure4a_naive_loss(),
        figure4b_in_transit_notification(),
        figure6_coordination_cases(),
    ]
