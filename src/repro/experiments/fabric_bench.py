"""Fabric campaign speedup / equivalence measurement (``repro bench-fabric``).

The work-stealing fabric (:mod:`repro.fabric`) claims two things at
once: audit campaigns scale across worker processes (and hosts) with
**at least 2.5x** wall-clock speedup on a 4-core host, and distribution
is **invisible** — the assembled result list is bit-for-bit identical
to serial execution, down to a canonical digest of every result dict.
This module measures both halves plus the transfer economics of the
content-addressed store, and packages them as the ``BENCH_fabric.json``
record:

* **campaign** — one serial cold pass (the exact per-schedule worker
  function the fabric delegates to) against one fabric campaign over
  the same shared-seed schedules, comparing wall-clock and canonical
  result digests;
* **transfers** — two consecutive flock-mode campaigns against a
  worker with its *own* CAS directory (the separate-host shape): the
  first must ship each warm-start image set exactly once over the
  wire, the second must ship nothing (pure CAS hits), and both must
  match the serial flock shard bit for bit.

The speedup phase states its claim honestly: on a box with fewer
usable CPUs than workers the fabric degrades to serial-plus-overhead,
so the recorded speedup simply documents the machine it ran on —
``benchmarks/bench_fabric.py`` arms the 2.5x floor only when the CPUs
exist to deliver it.  The equivalence and transfer-economics gates arm
unconditionally.
"""

from __future__ import annotations

import hashlib
import json
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional

from ..audit.campaign import _run_one_schedule
from ..audit.config import AuditConfig
from ..audit.generator import generate_schedules, reference_timeline
from ..audit.schedule import FaultSchedule
from ..fabric import FabricConfig, plan_shards, run_fabric_campaign
from ..flock.runner import _run_flock_shard
from ..parallel.pool import default_worker_count
from ..warmstart import share_schedule_seeds
from . import bench_store

#: The bench campaign: the coordinated scheme over enough shared-seed
#: schedules that sharding has real work to spread.
SCHEME = "coordinated"
SEED = 13
CONFIG_SCHEDULES = 32
HORIZON = 400.0

#: Workers the campaign phase spawns (capped by usable CPUs, floor 2).
MAX_WORKERS = 4

#: Shard granularity for the timed campaign — small enough that four
#: workers all stay busy, large enough that dispatch is not the bill.
SHARD_SIZE = 4

FORK_BATCH = 32


def bench_config(schedules: int = CONFIG_SCHEDULES,
                 horizon: float = HORIZON) -> AuditConfig:
    """The campaign configuration the bench runs under."""
    return AuditConfig(scheme=SCHEME, seed=SEED, schedules=schedules,
                      horizon=horizon)


def bench_workers(requested: Optional[int] = None) -> int:
    """Worker count: the request, else usable CPUs clamped to [2, 4]."""
    if requested is not None:
        return max(1, requested)
    return max(2, min(MAX_WORKERS, default_worker_count()))


def results_digest(results: List[Dict[str, Any]]) -> str:
    """Canonical digest of a result list — the bit-for-bit gate."""
    blob = json.dumps(results, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


# ----------------------------------------------------------------------
# phase 1: the campaign, serial vs fabric
# ----------------------------------------------------------------------
def measure_campaign(config: AuditConfig, schedules: List[FaultSchedule],
                     workers: int, cas_dir: str) -> Dict[str, Any]:
    """One serial cold pass and one fabric campaign, same schedules.

    The serial baseline calls the *identical* per-schedule worker
    function the fabric's workers delegate to, so any result divergence
    is the fabric's fault alone.
    """
    cd = config.to_dict()
    start = time.perf_counter()
    serial = [_run_one_schedule((cd, sched.to_dict()))
              for sched in schedules]
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    fabric_results, stats = run_fabric_campaign(
        config, schedules, mode="cold", workers=workers, cas_dir=cas_dir,
        fabric=FabricConfig(shard_size=SHARD_SIZE))
    fabric_seconds = time.perf_counter() - start

    serial_digest = results_digest(serial)
    fabric_digest = results_digest(fabric_results)
    return {
        "schedules": len(schedules),
        "workers": workers,
        "shards": stats["shards"],
        "serial_seconds": serial_seconds,
        "fabric_seconds": fabric_seconds,
        "speedup": serial_seconds / max(fabric_seconds, 1e-9),
        "violations": sum(1 for r in serial if r["violated"]),
        "errors": sum(1 for r in serial if r["error"]),
        "identical": fabric_results == serial,
        "digest_serial": serial_digest,
        "digest_fabric": fabric_digest,
        "digests_identical": serial_digest == fabric_digest,
        "steals": stats["steals"],
        "requeues": stats["requeues"],
        "local_runs": stats["local_runs"],
    }


# ----------------------------------------------------------------------
# phase 2: CAS transfer economics across consecutive campaigns
# ----------------------------------------------------------------------
def measure_transfers(config: AuditConfig, schedules: List[FaultSchedule],
                      timeline, sup_cas: str,
                      worker_cas: str) -> Dict[str, Any]:
    """Two flock campaigns against a worker with a private CAS dir.

    Campaign one must ship each exported image set over the wire
    exactly once; campaign two must ship nothing — the worker's CAS
    already holds every blob and the supervisor's refs already name
    every export.  Both campaigns must equal the serial flock shard.
    """
    serial = _run_flock_shard((config.to_dict(),
                               [s.to_dict() for s in schedules],
                               None, FORK_BATCH))
    prefixes = len({shard.prefix for shard in plan_shards(config, schedules)
                    if shard.prefix is not None})

    first, stats1 = run_fabric_campaign(
        config, schedules, mode="flock", workers=1, cas_dir=sup_cas,
        worker_cas_dirs=[worker_cas], timeline=timeline,
        fork_batch=FORK_BATCH)
    second, stats2 = run_fabric_campaign(
        config, schedules, mode="flock", workers=1, cas_dir=sup_cas,
        worker_cas_dirs=[worker_cas], timeline=timeline,
        fork_batch=FORK_BATCH)

    w1 = stats1["worker_stats"].get("w0", {})
    w2 = stats2["worker_stats"].get("w0", {})
    first_transfers = w1.get("transfers", -1)
    second_transfers = w2.get("transfers", -1)
    return {
        "schedules": len(schedules),
        "image_sets": prefixes,
        "first_transfers": first_transfers,
        "second_transfers": second_transfers,
        "second_cas_hits": w2.get("cas_hits", 0),
        "first_blob_serves": sum(stats1["blob_serves"].values()),
        "second_blob_serves": sum(stats2["blob_serves"].values()),
        "sets_exported": stats1["sets_exported"],
        "sets_reexported": stats2["sets_exported"],
        "identical": first == serial and second == serial,
        "transfer_once": (first_transfers == prefixes
                          and second_transfers == 0
                          and stats2["sets_exported"] == 0),
    }


# ----------------------------------------------------------------------
# the BENCH_fabric.json record
# ----------------------------------------------------------------------
def bench_record(schedules: int = CONFIG_SCHEDULES,
                 horizon: float = HORIZON,
                 workers: Optional[int] = None) -> Dict[str, Any]:
    """Run both phases and assemble the perf-trajectory record."""
    config = bench_config(schedules, horizon)
    timeline = reference_timeline(config)
    shared = share_schedule_seeds(
        config, generate_schedules(config, timeline=timeline))
    worker_count = bench_workers(workers)

    with tempfile.TemporaryDirectory(prefix="repro-fabric-bench-") as root:
        campaign = measure_campaign(config, shared, worker_count,
                                    cas_dir=f"{root}/campaign-cas")
        transfers = measure_transfers(config, shared, timeline,
                                      sup_cas=f"{root}/sup-cas",
                                      worker_cas=f"{root}/worker-cas")

    equivalent = (campaign["identical"]
                  and campaign["digests_identical"]
                  and transfers["identical"])
    return {
        "bench": "fabric",
        "python": sys.version.split()[0],
        "config": config.to_dict(),
        "fingerprint": config.fingerprint(),
        "usable_cpus": default_worker_count(),
        "workers": worker_count,
        "campaign": campaign,
        "transfers": transfers,
        "equivalent": equivalent,
    }


def format_record(record: Dict[str, Any]) -> str:
    """Human-oriented summary lines for the CLI."""
    campaign = record["campaign"]
    transfers = record["transfers"]
    return "\n".join([
        f" campaign: {campaign['schedules']} schedules in "
        f"{campaign['shards']} shards over {campaign['workers']} workers "
        f"({record['usable_cpus']} usable CPUs)  "
        f"serial {campaign['serial_seconds']:.2f}s  "
        f"fabric {campaign['fabric_seconds']:.2f}s  "
        f"({campaign['speedup']:.2f}x)  "
        f"violations={campaign['violations']} errors={campaign['errors']}",
        f"  results: {'identical' if campaign['identical'] else 'MISMATCH'} "
        f"(digest {campaign['digest_fabric'][:16]})  "
        f"steals={campaign['steals']} requeues={campaign['requeues']} "
        f"local={campaign['local_runs']}",
        f"transfers: {transfers['image_sets']} image set(s) -> "
        f"{transfers['first_transfers']} shipped first campaign, "
        f"{transfers['second_transfers']} second "
        f"({transfers['second_cas_hits']} CAS hits)  "
        f"{'once-only ok' if transfers['transfer_once'] else 'RE-SHIPPED'}",
        f"    equiv: {'ok' if record['equivalent'] else 'FAIL'}",
    ])


def trajectory_entry(record: Dict[str, Any],
                     recorded_at: Optional[str] = None) -> Dict[str, Any]:
    """The compact per-run summary kept in the trajectory: enough to
    plot scaling over time, small enough to accumulate forever."""
    campaign = record.get("campaign", {})
    transfers = record.get("transfers", {})
    if recorded_at is None:
        recorded_at = bench_store.utc_stamp()
    return {
        "recorded_at": recorded_at,
        "python": record.get("python"),
        "fingerprint": record.get("fingerprint"),
        "usable_cpus": record.get("usable_cpus"),
        "workers": record.get("workers"),
        "campaign_speedup": campaign.get("speedup"),
        "serial_seconds": campaign.get("serial_seconds"),
        "fabric_seconds": campaign.get("fabric_seconds"),
        "transfer_once": transfers.get("transfer_once"),
        "equivalent": record.get("equivalent"),
    }


def write_record(record: Dict[str, Any], path: str) -> None:
    """Append ``record`` to the perf trajectory at ``path``.

    The file holds ``{"bench", "latest", "trajectory"}``: the full most
    recent record plus one compact :func:`trajectory_entry` per run, so
    ``BENCH_fabric.json`` accumulates a scaling history instead of
    forgetting every run but the last.
    """
    bench_store.write_record(record, path, bench="fabric",
                             entry=trajectory_entry,
                             legacy_marker="campaign")


def read_latest(path: str) -> Optional[Dict[str, Any]]:
    """The most recent full record at ``path``; ``None`` if absent or
    unreadable."""
    return bench_store.read_latest(path, legacy_marker="campaign")
