"""Plain-text table and series formatting for experiment output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and greppable
(no external plotting dependencies).
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence


def format_cell(value: Any, precision: int = 3) -> str:
    """Render one cell: floats get fixed precision, the rest ``str``."""
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                 title: Optional[str] = None, precision: int = 3) -> str:
    """An aligned ASCII table."""
    str_rows: List[List[str]] = [[format_cell(c, precision) for c in row]
                                 for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_kv_block(title: str, pairs: Iterable, precision: int = 3) -> str:
    """A labelled key/value block."""
    lines = [title]
    items = list(pairs)
    width = max((len(str(k)) for k, _ in items), default=0)
    for key, value in items:
        lines.append(f"  {str(key).ljust(width)} : {format_cell(value, precision)}")
    return "\n".join(lines)


def log_series_bar(value: float, lo: float = 1.0, hi: float = 10_000.0,
                   width: int = 40) -> str:
    """A crude log-scale bar, for eyeballing Figure 7 shapes in text."""
    import math
    if value <= 0:
        return ""
    frac = (math.log10(value) - math.log10(lo)) / (math.log10(hi) - math.log10(lo))
    frac = min(1.0, max(0.0, frac))
    return "#" * max(1, int(round(frac * width)))
