"""One-shot reproduction report.

``python -m repro report`` regenerates, in one run, a compact version of
everything EXPERIMENTS.md records: the six figure scenarios, Table 1,
the Figure 7 sweep (reduced), the per-scheme overhead comparison, and a
pair of execution timelines — a self-contained artifact a reviewer can
diff against the paper.
"""

from __future__ import annotations

import io
from contextlib import redirect_stdout
from typing import Optional

from ..app.workload import WorkloadConfig
from ..coordination.scheme import Scheme, SystemConfig, build_system
from ..types import ProcessId, Role
from .figure7 import Figure7Config, format_figure7, run_figure7
from .overhead import OverheadConfig, format_overhead, run_overhead
from .scenarios import run_all_scenarios
from .table1 import Table1Config, format_table1, run_table1
from .timeline import render_timeline


def _timelines() -> str:
    lines = []
    for scheme, pseudo in ((Scheme.MDCD_ONLY, None),
                           (Scheme.COORDINATED, ProcessId(Role.ACTIVE_1.value))):
        horizon = 2000.0
        system = build_system(SystemConfig(
            scheme=scheme, seed=11, horizon=horizon,
            workload1=WorkloadConfig(internal_rate=0.02, external_rate=0.004,
                                     step_rate=0.01, horizon=horizon),
            workload2=WorkloadConfig(internal_rate=0.01, external_rate=0.004,
                                     step_rate=0.01, horizon=horizon)))
        system.run()
        title = ("Figure 1 — original MDCD" if scheme is Scheme.MDCD_ONLY
                 else "Figure 3 — modified MDCD under coordination")
        lines.append(title)
        lines.append(render_timeline(
            system.trace, [p.process_id for p in system.process_list()],
            since=200.0, until=1800.0, width=96, pseudo_for=pseudo))
        lines.append("")
    return "\n".join(lines)


def generate_report(fig7_config: Optional[Figure7Config] = None) -> str:
    """Build the full report as one string."""
    out = io.StringIO()
    with redirect_stdout(out):
        print("=" * 72)
        print("Reproduction report — 'Synergistic Coordination between "
              "Software and")
        print("Hardware Fault Tolerance Techniques' (DSN 2001)")
        print("=" * 72)
        print()
        print("--- Scenario reproductions (Figures 1, 2, 3, 4, 6) ---")
        results = run_all_scenarios()
        for result in results:
            print(result)
        print()
        print("--- Checkpoint-pattern timelines ---")
        print(_timelines())
        print("--- Table 1 ---")
        config = Table1Config()
        print(format_table1(run_table1(config), config))
        print()
        print("--- Figure 7 (reduced sweep) ---")
        fig7 = fig7_config if fig7_config is not None else Figure7Config(
            internal_rates=(60, 120, 200), horizon=20_000.0, replications=1)
        print(format_figure7(run_figure7(fig7)))
        print()
        print("--- Performance cost by scheme ---")
        print(format_overhead(run_overhead(OverheadConfig())))
        print()
        passed = sum(1 for r in results if r.passed)
        print(f"Scenario verdict: {passed}/{len(results)} paper claims "
              f"reproduced.")
    return out.getvalue()
