"""Table 1 — original vs adapted TB protocol, attribute by attribute.

The paper's Table 1 contrasts the two protocols on four attributes:

====================  ==============================  =================================
attribute             original TB                     adapted TB
====================  ==============================  =================================
blocking period       ``delta + 2*rho*tau - t_min``   ``tau(b) = delta + 2*rho*tau + Tm(b)``
checkpoint contents   current state                   current state or volatile copy
messages blocked      all                             all but "passed AT" notifications
purpose of blocking   consistency                     consistency and recoverability
====================  ==============================  =================================

This harness runs the same three-process workload under the naive scheme
(original TB) and the coordinated scheme (adapted TB) and *measures*
each attribute: realized blocking-period lengths split by the dirty bit,
the distribution of stable-checkpoint contents, the kinds of messages
buffered during blocking windows, and — for the "purpose" row — the
validity-concerned checker verdict over the final stable line.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..analysis.global_state import common_stable_line
from ..analysis.invariants import check_system_line, summarize_violations
from ..app.workload import WorkloadConfig
from ..coordination.scheme import Scheme, SystemConfig, build_system
from ..sim.clock import ClockConfig
from ..sim.monitor import RunningStat
from ..sim.network import NetworkConfig
from ..tb.blocking import TbConfig, blocking_period
from ..types import Role
from .reporting import format_table


@dataclasses.dataclass(frozen=True)
class Table1Config:
    """Workload/protocol parameters of the comparison run."""

    seed: int = 17
    horizon: float = 8000.0
    tb_interval: float = 20.0
    clock: ClockConfig = dataclasses.field(
        default_factory=lambda: ClockConfig(delta=0.2, rho=1e-6))
    network: NetworkConfig = dataclasses.field(
        default_factory=lambda: NetworkConfig(t_min=0.004, t_max=0.04))
    internal_rate: float = 0.2
    external_rate: float = 0.05


@dataclasses.dataclass
class ProtocolObservation:
    """Measured attributes of one protocol run."""

    scheme: str
    blocking_clean: RunningStat
    blocking_dirty: RunningStat
    contents: Dict[str, int]
    blocked_kinds: Dict[str, int]
    line_violations: Dict[str, int]
    establishments: int


def _observe(config: Table1Config, scheme: Scheme) -> ProtocolObservation:
    system = build_system(SystemConfig(
        scheme=scheme, seed=config.seed, horizon=config.horizon,
        clock=config.clock, network=config.network,
        tb=TbConfig(interval=config.tb_interval),
        workload1=WorkloadConfig(internal_rate=config.internal_rate,
                                 external_rate=config.external_rate,
                                 step_rate=0.01, horizon=config.horizon),
        workload2=WorkloadConfig(internal_rate=config.internal_rate / 2.0,
                                 external_rate=config.external_rate,
                                 step_rate=0.01, horizon=config.horizon),
        # Only tb.establish.* records are asserted over below; filtering
        # the rest keeps the campaign off the trace allocation path.
        trace_categories=("tb.establish.",)))
    system.run()
    blocking_clean, blocking_dirty = RunningStat(), RunningStat()
    contents: Dict[str, int] = {}
    establishments = 0
    for rec in system.trace.records("tb.establish.start"):
        stat = blocking_dirty if rec.data.get("dirty") else blocking_clean
        stat.add(rec.data["blocking"])
    for rec in system.trace.records("tb.establish.done"):
        establishments += 1
        content = rec.data.get("content")
        if content:
            contents[content] = contents.get(content, 0) + 1
    blocked_kinds: Dict[str, int] = {}
    for proc in system.process_list():
        for name, count in proc.counters.as_dict().items():
            if name.startswith("blocked.buffered."):
                kind = name.rsplit(".", 1)[-1]
                blocked_kinds[kind] = blocked_kinds.get(kind, 0) + count
    violations = summarize_violations(check_system_line(
        common_stable_line(system)))
    return ProtocolObservation(
        scheme=scheme.value, blocking_clean=blocking_clean,
        blocking_dirty=blocking_dirty, contents=contents,
        blocked_kinds=blocked_kinds, line_violations=violations,
        establishments=establishments)


def run_table1(config: Table1Config = Table1Config(), *,
               workers: Optional[int] = None
               ) -> Dict[str, ProtocolObservation]:
    """Measure both protocols on the identical workload (optionally one
    worker process per protocol)."""
    import functools
    from ..parallel.pool import parallel_map
    original, adapted = parallel_map(
        functools.partial(_observe, config),
        [Scheme.NAIVE, Scheme.COORDINATED], workers=workers)
    return {"original": original, "adapted": adapted}


def format_table1(observations: Dict[str, ProtocolObservation],
                  config: Table1Config = Table1Config()) -> str:
    """Render the paper's Table 1 with measured values alongside the
    theoretical formulas."""
    orig, adap = observations["original"], observations["adapted"]
    tau0 = blocking_period(0, config.clock, 0.0, config.network)
    tau1 = blocking_period(1, config.clock, 0.0, config.network)
    rows: List[List[str]] = [
        ["Blocking period (formula, at resync)",
         f"delta+2*rho*tau-t_min = {tau0 * 1000:.1f} ms",
         f"tau(b): tau(0)={tau0 * 1000:.1f} ms, tau(1)={tau1 * 1000:.1f} ms"],
        ["Blocking measured, clean (mean ms)",
         f"{orig.blocking_clean.mean * 1000:.1f} (n={orig.blocking_clean.count})",
         f"{adap.blocking_clean.mean * 1000:.1f} (n={adap.blocking_clean.count})"],
        ["Blocking measured, dirty (mean ms)",
         f"{orig.blocking_dirty.mean * 1000:.1f} (n={orig.blocking_dirty.count})",
         f"{adap.blocking_dirty.mean * 1000:.1f} (n={adap.blocking_dirty.count})"],
        ["Checkpoint contents",
         str(orig.contents), str(adap.contents)],
        ["Messages blocked (by kind)",
         str(orig.blocked_kinds), str(adap.blocked_kinds)],
        ["Validity-concerned line violations",
         str(orig.line_violations or "none in this draw"),
         str(adap.line_violations or "none")],
        ["Purpose of blocking",
         "consistency (recoverability via saved unacked msgs)",
         "consistency and recoverability (+ saved unacked msgs)"],
    ]
    return format_table(
        ["attribute", "original TB (naive combination)", "adapted TB (coordinated)"],
        rows, title="Table 1 — original vs adapted TB checkpointing")
