"""Overhead versus system size: the coordinated scheme over growing
topologies.

The paper measures its three-process shape; the topology layer makes
the membership a parameter, so the natural follow-up question is how
the coordination's cost *scales*: more guarded components mean more
independent acceptance-test/validation traffic, more shadows mean more
suppressed logs and wider "passed AT" fan-out, more peers a denser
mesh.  This harness runs the identical fault-free workload profile over
a sweep of topologies (by default the paper's 3 processes, a 9-process
``2x2+3`` and a 25-process ``4x4+5``) and reports the cost profile both
in aggregate and normalized per process — the per-process columns are
the scaling story.
"""

from __future__ import annotations

import dataclasses
import functools
import time
from typing import Dict, List, Optional

from ..app.workload import WorkloadConfig
from ..coordination.scheme import Scheme, SystemConfig, build_system
from ..tb.blocking import TbConfig
from ..topology.model import parse_topology
from .reporting import format_table

#: The default sweep: N ∈ {3, 9, 25} OS-process-equivalents.
DEFAULT_TOPOLOGIES = ("paper", "2x2+3", "4x4+5")


@dataclasses.dataclass(frozen=True)
class TopologySweepConfig:
    """Identical workload profile applied to every topology."""

    seed: int = 33
    horizon: float = 4_000.0
    tb_interval: float = 30.0
    internal_rate: float = 0.1
    external_rate: float = 0.02
    topologies: tuple = DEFAULT_TOPOLOGIES


@dataclasses.dataclass
class TopologyObservation:
    """Measured cost profile of one topology."""

    topology: str
    processes: int
    components: int
    shadows: int
    peers: int
    blocked_time_fraction: float
    stable_kb_per_hour: float
    volatile_kb_per_hour: float
    notifications_per_app_message: float
    at_runs: int
    establish_epochs: int
    #: Per-process normalizations — the scaling columns.
    stable_kb_per_hour_per_process: float
    notifications_per_process: float
    wall_seconds: float

    def as_row(self) -> List:
        return [
            self.topology,
            self.processes,
            f"{self.components}x{self.shadows}+{self.peers}",
            f"{self.blocked_time_fraction * 100:.3f}%",
            f"{self.stable_kb_per_hour:.1f}",
            f"{self.volatile_kb_per_hour:.1f}",
            f"{self.notifications_per_app_message:.3f}",
            self.at_runs,
            f"{self.stable_kb_per_hour_per_process:.1f}",
            f"{self.notifications_per_process:.1f}",
            f"{self.wall_seconds:.2f}s",
        ]


def measure_topology(config: TopologySweepConfig,
                     spec: str) -> TopologyObservation:
    """Run the coordinated scheme on one topology and profile it."""
    topo = parse_topology(spec)
    horizon = config.horizon
    started = time.perf_counter()
    system = build_system(SystemConfig(
        scheme=Scheme.COORDINATED, seed=config.seed, horizon=horizon,
        tb=TbConfig(interval=config.tb_interval),
        workload1=WorkloadConfig(internal_rate=config.internal_rate,
                                 external_rate=config.external_rate,
                                 step_rate=0.02, horizon=horizon),
        workload2=WorkloadConfig(internal_rate=config.internal_rate / 2.0,
                                 external_rate=config.external_rate,
                                 step_rate=0.02, horizon=horizon),
        trace_categories=("blocking.start", "tb.establish.done"),
        topology=spec))
    system.run()
    wall = time.perf_counter() - started

    processes = system.process_list()
    blocked_time = sum(rec.data["length"]
                       for rec in system.trace.records("blocking.start"))
    establishments = len(list(system.trace.records("tb.establish.done")))
    stable_bytes = sum(p.node.stable.bytes_written for p in processes)
    volatile_bytes = sum(p.node.volatile.bytes_written for p in processes)
    app_messages = sum(p.counters.get("sent.internal")
                       + p.counters.get("sent.external") for p in processes)
    notifications = sum(p.counters.get("sent.passed_at") for p in processes)
    at_runs = sum(p.counters.get("at.pass") + p.counters.get("at.fail")
                  for p in processes)
    hours = horizon / 3600.0
    n = len(processes)
    return TopologyObservation(
        topology=topo.spec,
        processes=n,
        components=topo.n_components,
        shadows=topo.n_shadows,
        peers=topo.n_peers,
        blocked_time_fraction=blocked_time / (horizon * n),
        stable_kb_per_hour=stable_bytes / 1024.0 / hours,
        volatile_kb_per_hour=volatile_bytes / 1024.0 / hours,
        notifications_per_app_message=(notifications / app_messages
                                       if app_messages else 0.0),
        at_runs=at_runs,
        establish_epochs=establishments,
        stable_kb_per_hour_per_process=stable_bytes / 1024.0 / hours / n,
        notifications_per_process=notifications / n,
        wall_seconds=wall)


def _measure_spec(config: TopologySweepConfig, spec: str) -> TopologyObservation:
    """Module-level cell runner so worker processes can receive it."""
    return measure_topology(config, spec)


def run_topology_sweep(config: TopologySweepConfig = TopologySweepConfig(), *,
                       workers: Optional[int] = None
                       ) -> Dict[str, TopologyObservation]:
    """Profile every topology of the sweep on the identical workload."""
    from ..parallel.pool import parallel_map
    observations = parallel_map(functools.partial(_measure_spec, config),
                                list(config.topologies), workers=workers)
    return {obs.topology: obs for obs in observations}


def format_topology_sweep(observations: Dict[str, TopologyObservation]) -> str:
    """Render the overhead-vs-N table (sorted by system size)."""
    ordered = sorted(observations.values(), key=lambda o: o.processes)
    return format_table(
        ["topology", "procs", "NxK+U", "blocked time", "stable KiB/h",
         "vol KiB/h", "notif/app-msg", "AT runs", "stable KiB/h/proc",
         "notif/proc", "wall"],
        [obs.as_row() for obs in ordered],
        title="Coordinated-scheme overhead vs. topology size "
              "(identical fault-free workload)")
