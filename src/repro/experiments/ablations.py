"""Ablation studies of the coordination scheme's design choices.

DESIGN.md calls out four load-bearing mechanisms; each ablation removes
one and measures the damage, plus a fifth study that maps the regime
boundary of the Figure 7 result:

1. **Mid-blocking content swap** (paper Fig. 4(b)) — without it, an
   in-transit "passed AT" notification leaves stable lines invalid.
2. **``Ndc`` gating of "passed AT" handling** — without it, a
   notification from a process that already completed its establishment
   can flip a dirty bit at the wrong epoch.
3. **Blocking period** (paper Fig. 2(a)) — without it, consistency
   breaks.
4. **Acceptance-test coverage** — below 1.0, the protocol's dirty-bit
   view under-approximates ground truth and contamination survives.
5. **Dirty-fraction regime** — the E[D_wt]/E[D_co] gap erodes as the
   internal message rate approaches the validation rate (``f_d -> 1``),
   locating the crossover the closed-form model predicts.
6. **Checkpoint interval** — ``E[D_co]``'s ``Delta/2`` term against the
   stable-write frequency it costs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..analysis.global_state import common_stable_line, stable_line
from ..analysis.invariants import check_ground_truth, check_system_line, summarize_violations
from ..analysis.model import ModelParams, expected_rollback_coordinated, \
    expected_rollback_write_through
from ..app.acceptance import AcceptanceTestConfig
from ..app.faults import SoftwareFaultPlan
from ..app.workload import WorkloadConfig
from ..coordination.scheme import Scheme, SystemConfig, build_system
from ..tb.blocking import TbConfig
from ..types import Role
from .figure7 import Figure7Config, run_point
from .reporting import format_table
from .scenarios import _run_in_transit_case


@dataclasses.dataclass
class AblationRow:
    """One configuration's outcome in an ablation sweep."""

    label: str
    metrics: Dict[str, object]


def ablate_swap(max_seeds: int = 40) -> List[AblationRow]:
    """Mechanism 1: the mid-blocking swap, over every clock draw that
    produces the Fig. 4(b) window."""
    rows: List[AblationRow] = []
    windows = violations_off = violations_on = 0
    for seed in range(max_seeds):
        off = _run_in_transit_case(swap=False, seed=seed)
        if off is None:
            continue
        on = _run_in_transit_case(swap=True, seed=seed)
        if on is None:
            continue
        windows += 1
        if not off[0]:
            violations_off += 1
        if not on[0]:
            violations_on += 1
    rows.append(AblationRow("swap disabled",
                            {"fig4b windows": windows,
                             "invalid lines": violations_off}))
    rows.append(AblationRow("swap enabled",
                            {"fig4b windows": windows,
                             "invalid lines": violations_on}))
    return rows


def ablate_ndc_gating(seeds: int = 6, horizon: float = 4000.0) -> List[AblationRow]:
    """Mechanism 2: the epoch gate on "passed AT" notifications.

    With gating off, every stable line of every seed is audited; the
    wrong-epoch dirty-bit resets show up as validity violations and as
    content swaps triggered by already-completed establishments.
    """
    rows: List[AblationRow] = []
    for gating in (True, False):
        total_lines = 0
        violations: Dict[str, int] = {}
        mismatches = 0
        for seed in range(seeds):
            system = build_system(SystemConfig(
                scheme=Scheme.COORDINATED, seed=seed, horizon=horizon,
                clock=dataclasses.replace(SystemConfig().clock, delta=0.3),
                tb=TbConfig(interval=10.0),
                workload1=WorkloadConfig(internal_rate=1.0, external_rate=0.3,
                                         step_rate=0.01, horizon=horizon),
                workload2=WorkloadConfig(internal_rate=0.5, external_rate=0.3,
                                         step_rate=0.01, horizon=horizon),
                stable_history=1000))
            if not gating:
                for proc in system.process_list():
                    proc.software.ndc_gating = False
            system.run()
            common = None
            for proc in system.process_list():
                epochs = set(proc.node.stable.epochs(proc.process_id))
                common = epochs if common is None else common & epochs
            for epoch in sorted(common or ()):
                line = stable_line(system, epoch=epoch)
                if len(line) < 3:
                    continue
                total_lines += 1
                for v in check_system_line(line):
                    violations[v.kind] = violations.get(v.kind, 0) + 1
            for proc in system.process_list():
                mismatches += proc.counters.get("passed_at.ndc_mismatch")
        rows.append(AblationRow(
            f"ndc gating {'on' if gating else 'off'}",
            {"lines": total_lines, "violations": violations or "none",
             "gated (mismatched-epoch) notifications": mismatches}))
    return rows


def ablate_blocking(seeds: int = 6, horizon: float = 2000.0) -> List[AblationRow]:
    """Mechanism 3: the blocking period, inside the full coordinated
    three-process system (the pair-system version is paper Fig. 2)."""
    rows: List[AblationRow] = []
    for blocking in (True, False):
        total_lines = 0
        violations: Dict[str, int] = {}
        for seed in range(seeds):
            system = build_system(SystemConfig(
                scheme=Scheme.COORDINATED, seed=seed, horizon=horizon,
                clock=dataclasses.replace(SystemConfig().clock, delta=0.3),
                tb=TbConfig(interval=10.0, blocking_enabled=blocking),
                workload1=WorkloadConfig(internal_rate=1.0, external_rate=0.2,
                                         step_rate=0.01, horizon=horizon),
                workload2=WorkloadConfig(internal_rate=0.5, external_rate=0.2,
                                         step_rate=0.01, horizon=horizon),
                stable_history=1000))
            system.run()
            common = None
            for proc in system.process_list():
                epochs = set(proc.node.stable.epochs(proc.process_id))
                common = epochs if common is None else common & epochs
            for epoch in sorted(common or ()):
                line = stable_line(system, epoch=epoch)
                if len(line) < 3:
                    continue
                total_lines += 1
                for v in check_system_line(line, include_ground_truth=False):
                    violations[v.kind] = violations.get(v.kind, 0) + 1
        rows.append(AblationRow(
            f"blocking {'on' if blocking else 'off'}",
            {"lines": total_lines, "violations": violations or "none"}))
    return rows


def _at_coverage_cell(horizon: float, cell) -> Dict[str, bool]:
    """One (coverage, seed) run — module-level so worker processes can
    receive it via :func:`repro.parallel.parallel_map`."""
    coverage, seed = cell
    system = build_system(SystemConfig(
        scheme=Scheme.COORDINATED, seed=seed, horizon=horizon,
        at=AcceptanceTestConfig(coverage=coverage),
        tb=TbConfig(interval=30.0),
        workload1=WorkloadConfig(internal_rate=0.1, external_rate=0.02,
                                 step_rate=0.01, horizon=horizon),
        workload2=WorkloadConfig(internal_rate=0.05, external_rate=0.02,
                                 step_rate=0.01, horizon=horizon)))
    system.inject_software_fault(SoftwareFaultPlan(activate_at=horizon / 4.0))
    system.run()
    from ..analysis.global_state import live_line
    return {"detected": system.sw_recovery.completed,
            "contaminated": bool(check_ground_truth(live_line(system)))}


def ablate_at_coverage(coverages=(1.0, 0.9, 0.6, 0.3),
                       seeds: int = 5, horizon: float = 3000.0,
                       workers: Optional[int] = None) -> List[AblationRow]:
    """Mechanism 4: acceptance-test coverage.

    With imperfect coverage a corrupt external message can pass the AT,
    wrongly cleaning dirty bits: ground-truth audits of the live states
    catch the resulting undetected contamination.  The (coverage × seed)
    cells are independent runs and shard across ``workers``.
    """
    import functools
    from ..parallel.pool import parallel_map
    cells = [(coverage, seed) for coverage in coverages
             for seed in range(seeds)]
    outcomes = parallel_map(functools.partial(_at_coverage_cell, horizon),
                            cells, workers=workers)
    rows: List[AblationRow] = []
    for coverage in coverages:
        picked = [out for (cov, _), out in zip(cells, outcomes)
                  if cov == coverage]
        rows.append(AblationRow(
            f"coverage {coverage:.1f}",
            {"runs": seeds,
             "error detected (takeover)":
                 sum(1 for out in picked if out["detected"]),
             "undetected contamination in believed-clean state":
                 sum(1 for out in picked if out["contaminated"])}))
    return rows


def ablate_dirty_fraction(rate_multipliers=(1, 5, 20, 80, 300),
                          base: Optional[Figure7Config] = None,
                          workers: Optional[int] = None,
                          cache=None) -> List[AblationRow]:
    """Study 5: push the internal rate toward (and past) the validation
    rate; the measured and modelled E[D_wt]/E[D_co] gap collapses as
    ``f_d -> 1`` — the regime boundary of the paper's Fig. 7 claim."""
    config = base if base is not None else Figure7Config(
        horizon=15_000.0, replications=1)
    rows: List[AblationRow] = []
    for mult in rate_multipliers:
        rate = 100 * mult
        point = run_point(config, rate, workers=workers, cache=cache)
        params = ModelParams(
            internal_rate1=rate / config.rate_unit,
            external_rate1=config.external_rate,
            internal_rate2=config.internal_rate2,
            external_rate2=config.external_rate2,
            tb_interval=config.tb_interval)
        rows.append(AblationRow(
            f"lambda_int = {rate}/1e5 s",
            {"E[D_co]": round(point.e_d_co, 2),
             "E[D_wt]": round(point.e_d_wt, 2),
             "measured wt/co": round(point.measured_factor, 2),
             "model wt/co": round(
                 expected_rollback_write_through(params)
                 / expected_rollback_coordinated(params), 2)}))
    return rows


def ablate_interval(intervals=(2.0, 6.0, 12.0, 24.0),
                    base: Optional[Figure7Config] = None,
                    workers: Optional[int] = None,
                    cache=None) -> List[AblationRow]:
    """Study 6: the checkpoint interval Delta.

    The model says ``E[D_co] ~= Delta/2 + f_d/lambda_v``: halving the
    interval halves the periodic term at the cost of proportionally more
    stable writes.  The sweep measures both sides of that trade.
    """
    config = base if base is not None else Figure7Config(
        horizon=20_000.0, replications=2)
    rate = 100
    rows: List[AblationRow] = []
    for interval in intervals:
        cfg = dataclasses.replace(config, tb_interval=interval)
        point = run_point(cfg, rate, workers=workers, cache=cache)
        rows.append(AblationRow(
            f"Delta = {interval:g} s",
            {"E[D_co]": round(point.e_d_co, 2),
             "model E[D_co]": round(point.model_co, 2),
             "E[D_wt]": round(point.e_d_wt, 2),
             "stable saves/h (3 procs)": round(3 * 3600.0 / interval),
             "wt/co": round(point.measured_factor, 2)}))
    return rows


def format_ablation(title: str, rows: List[AblationRow]) -> str:
    """Render one ablation as a table."""
    keys: List[str] = []
    for row in rows:
        for key in row.metrics:
            if key not in keys:
                keys.append(key)
    table_rows = [[row.label] + [row.metrics.get(k, "") for k in keys]
                  for row in rows]
    return format_table(["configuration"] + keys, table_rows, title=title)
