"""Kernel-throughput measurement core (``repro bench-kernel``).

Every campaign in the reproduction is millions of events through
:class:`repro.sim.kernel.Simulator`, so kernel throughput multiplies
everything else — parallel sharding, cheap checkpoints, bigger sweeps.
This module measures it three ways and packages the result as the
``BENCH_kernel.json`` perf-trajectory record:

* **churn** — a timer-like microbench: self-rescheduling callbacks with
  a 30% cancel-and-replace rate, the kernel's steady-state shape under
  the TB/MDCD protocols;
* **cancel storm** — schedule a large far-future population, cancel
  most of it, then drain: the lazy-deletion worst case the heap
  compaction policy exists for;
* **campaign** — wall-clock of one Fig. 7 replication (the paper's
  headline sweep) at the default bench point.

Both microbenches also run against a **pinned legacy kernel** — a
frozen copy of the seed implementation (frozen-dataclass events with a
one-element-list cancel flag and tuple-building comparisons; a run loop
that pops and re-pushes boundary events) — so the speedup claim stays
measurable against the same baseline forever, not against whatever the
previous commit happened to be.

Determinism is part of the contract: the record asserts that the Fig. 7
campaign sample sequence is bit-for-bit identical with tracing on/off,
event pooling on/off, and serial vs two-worker execution.
"""

from __future__ import annotations

import dataclasses
import functools
import heapq
import itertools
import random
import sys
import time
from typing import Any, Callable, Dict, List, Optional

from ..coordination.scheme import Scheme, build_system
from ..sim.kernel import Simulator
from . import bench_store
from .runner import run_campaign

#: Fig. 7 bench point (matches benchmarks/bench_checkpoint_cost.py).
RATE = 100
SEED = 2001
CAMPAIGN_HORIZON = 8_000.0

#: Microbench defaults: enough events for stable timing, small enough
#: for a CI smoke job.
CHURN_EVENTS = 150_000
STORM_EVENTS = 120_000


# ----------------------------------------------------------------------
# the pinned legacy kernel (seed implementation, PR 0-2 era)
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class _LegacyEvent:
    """The seed repo's event: frozen dataclass, list-boxed cancel flag,
    tuple-building ``__lt__``.  Kept verbatim as the bench baseline."""

    time: float
    priority: int
    seq: int
    callback: Callable[..., Any]
    args: tuple
    label: str = ""
    _cancelled: list = dataclasses.field(
        default_factory=lambda: [False], compare=False)

    def __lt__(self, other: "_LegacyEvent") -> bool:
        return (self.time, self.priority, self.seq) < \
            (other.time, other.priority, other.seq)

    @property
    def cancelled(self) -> bool:
        return self._cancelled[0]

    def cancel(self) -> None:
        self._cancelled[0] = True

    def fire(self) -> None:
        self.callback(*self.args)


class _LegacySimulator:
    """The seed repo's run loop: per-event counter via itertools, lazy
    deletion with no compaction, O(n) pending_count, and pop-then-push
    at the ``until`` boundary."""

    def __init__(self) -> None:
        self._heap: List[_LegacyEvent] = []
        self._now = 0.0
        self._seq = itertools.count()
        self._stopped = False
        self.events_executed = 0

    @property
    def now(self) -> float:
        return self._now

    def pending_count(self) -> int:
        return sum(1 for ev in self._heap if not ev.cancelled)

    def schedule_at(self, time: float, callback, args=(), priority=2,
                    label: str = "") -> _LegacyEvent:
        event = _LegacyEvent(time=time, priority=priority,
                             seq=next(self._seq), callback=callback,
                             args=args, label=label)
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(self, delay: float, callback, args=(), priority=2,
                       label: str = "") -> _LegacyEvent:
        return self.schedule_at(self._now + delay, callback, args=args,
                                priority=priority, label=label)

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        executed = 0
        while self._heap:
            if self._stopped:
                break
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if until is not None and event.time > until:
                heapq.heappush(self._heap, event)
                break
            self._now = max(self._now, event.time)
            event.fire()
            self.events_executed += 1
            executed += 1
            if max_events is not None and executed >= max_events:
                break
        if until is not None and self._now < until and not self._stopped:
            self._now = until


#: The comparable kernel variants the microbenches run against.
KERNELS: Dict[str, Callable[[], Any]] = {
    "legacy": _LegacySimulator,
    "current": Simulator,
    "pooled": functools.partial(Simulator, pooling=True),
}


# ----------------------------------------------------------------------
# microbench workloads (kernel-API-agnostic)
# ----------------------------------------------------------------------
def churn_workload(sim, n_events: int, cancel_frac: float = 0.3,
                   seed: int = 1) -> int:
    """Self-rescheduling callbacks with cancel-and-replace churn.

    Uses only the ``schedule_after``/``cancel``/``run`` surface both
    kernels share; the draw sequence depends only on callback order,
    which both kernels produce identically (asserted by the caller via
    ``events_executed``).
    """
    rng = random.Random(seed)
    rand = rng.random
    fired = [0]

    def work(_tag: int) -> None:
        fired[0] += 1
        if fired[0] < n_events:
            event = sim.schedule_after(rand(), work, args=(0,))
            if rand() < cancel_frac:
                event.cancel()
                sim.schedule_after(rand(), work, args=(0,))

    for _ in range(100):
        sim.schedule_after(rand(), work, args=(0,))
    sim.run(max_events=n_events)
    return sim.events_executed


def cancel_storm_workload(sim, n_events: int, live_frac: float = 0.1,
                          seed: int = 2) -> int:
    """Schedule a big far-future population, cancel 90% of it, drain.

    This is the shape a mass timer re-arm or ``cancel_all`` leaves
    behind — the case the heap-compaction policy targets: the legacy
    kernel drags every dead entry through the heap until it surfaces.
    """
    rng = random.Random(seed)
    rand = rng.random
    handles = [sim.schedule_after(1.0 + rand(), _noop, args=())
               for _ in range(n_events)]
    for index, event in enumerate(handles):
        if rng.random() >= live_frac:
            event.cancel()
        elif index % 7 == 0:
            # Interleave fresh schedules so cancels and pushes mix.
            sim.schedule_after(2.0 + rand(), _noop, args=())
    sim.run()
    return sim.events_executed


def _noop() -> None:
    pass


def measure_microbench(workload: Callable[..., int], kernel: str,
                       n_events: int, repeats: int = 3) -> Dict[str, Any]:
    """Best-of-``repeats`` events/sec for one workload on one kernel."""
    factory = KERNELS[kernel]
    best = None
    executed = 0
    for _ in range(repeats):
        sim = factory()
        start = time.perf_counter()
        executed = workload(sim, n_events)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return {
        "kernel": kernel,
        "events_executed": executed,
        "best_wall_seconds": best,
        "events_per_sec": executed / best if best else 0.0,
    }


# ----------------------------------------------------------------------
# campaign wall-clock and determinism
# ----------------------------------------------------------------------
def _campaign_cell(trace_enabled: bool, pooling: bool, horizon: float,
                   seed: int) -> List[float]:
    """One Fig. 7 replication at the bench point (module-level so
    ``workers=2`` runs can ship it to worker processes)."""
    from .figure7 import Figure7Config, _crash_plans, _system_config
    fig = dataclasses.replace(Figure7Config(), horizon=horizon)
    config = dataclasses.replace(
        _system_config(fig, RATE, Scheme.COORDINATED, seed),
        trace_enabled=trace_enabled, event_pooling=pooling)
    system = build_system(config)
    for plan in _crash_plans(fig, seed):
        system.inject_crash(plan)
    system.run()
    assert system.hw_recovery is not None
    return system.hw_recovery.distances()


def campaign_samples(trace_enabled: bool = False, pooling: bool = False,
                     workers: Optional[int] = None, replications: int = 2,
                     horizon: float = CAMPAIGN_HORIZON) -> List[float]:
    """The determinism campaign's full sample sequence."""
    return run_campaign(
        "bench.kernel", SEED, replications,
        functools.partial(_campaign_cell, trace_enabled, pooling, horizon),
        workers=workers).samples


def measure_campaign(horizon: float = CAMPAIGN_HORIZON,
                     repeats: int = 3) -> Dict[str, Any]:
    """Best-of wall-clock of one serial Fig. 7 replication."""
    best = None
    samples = 0
    for _ in range(repeats):
        start = time.perf_counter()
        cell = _campaign_cell(False, False, horizon, SEED)
        elapsed = time.perf_counter() - start
        samples = len(cell)
        if best is None or elapsed < best:
            best = elapsed
    return {
        "experiment": "figure7", "rate": RATE, "seed": SEED,
        "horizon": horizon, "samples": samples,
        "best_wall_seconds": best,
    }


def check_determinism(horizon: float = CAMPAIGN_HORIZON,
                      replications: int = 2) -> Dict[str, bool]:
    """Bit-for-bit sample equality across the representation knobs."""
    reference = campaign_samples(horizon=horizon, replications=replications)
    same = {
        "tracing": campaign_samples(trace_enabled=True, horizon=horizon,
                                    replications=replications) == reference,
        "pooling": campaign_samples(pooling=True, horizon=horizon,
                                    replications=replications) == reference,
        "workers": campaign_samples(workers=2, horizon=horizon,
                                    replications=replications) == reference,
    }
    same["all"] = all(same.values()) and bool(reference)
    return same


# ----------------------------------------------------------------------
# the BENCH_kernel.json record
# ----------------------------------------------------------------------
def bench_record(churn_events: int = CHURN_EVENTS,
                 storm_events: int = STORM_EVENTS,
                 campaign_horizon: float = CAMPAIGN_HORIZON,
                 repeats: int = 3) -> Dict[str, Any]:
    """Run everything and assemble the perf-trajectory record."""
    micro: Dict[str, Dict[str, Any]] = {}
    for name, workload, n_events in (
            ("churn", churn_workload, churn_events),
            ("cancel_storm", cancel_storm_workload, storm_events)):
        rows = {kernel: measure_microbench(workload, kernel, n_events,
                                           repeats=repeats)
                for kernel in KERNELS}
        executed = {row["events_executed"] for row in rows.values()}
        micro[name] = {
            "events": n_events,
            "kernels": rows,
            # Same callback sequence on every kernel, or the comparison
            # (and the determinism story) is void.
            "identical_execution": len(executed) == 1,
            "speedup_current_vs_legacy":
                rows["current"]["events_per_sec"]
                / max(rows["legacy"]["events_per_sec"], 1e-9),
            "speedup_pooled_vs_legacy":
                rows["pooled"]["events_per_sec"]
                / max(rows["legacy"]["events_per_sec"], 1e-9),
        }
    return {
        "bench": "kernel",
        "python": sys.version.split()[0],
        "microbench": micro,
        "campaign": measure_campaign(campaign_horizon, repeats=repeats),
        "determinism": check_determinism(campaign_horizon),
    }


def format_record(record: Dict[str, Any]) -> str:
    """Human-oriented summary lines for the CLI."""
    lines = []
    for name, bench in record["microbench"].items():
        rows = bench["kernels"]
        lines.append(
            f"{name:>13}: legacy {rows['legacy']['events_per_sec']:>10,.0f} ev/s"
            f"  current {rows['current']['events_per_sec']:>10,.0f} ev/s"
            f"  pooled {rows['pooled']['events_per_sec']:>10,.0f} ev/s"
            f"  ({bench['speedup_current_vs_legacy']:.2f}x / "
            f"{bench['speedup_pooled_vs_legacy']:.2f}x)")
    campaign = record["campaign"]
    lines.append(f"     campaign: fig7 rate={campaign['rate']} horizon="
                 f"{campaign['horizon']:.0f}s -> "
                 f"{campaign['best_wall_seconds']:.3f}s wall "
                 f"({campaign['samples']} samples)")
    det = record["determinism"]
    lines.append("  determinism: " + "  ".join(
        f"{key}={'ok' if value else 'FAIL'}"
        for key, value in det.items() if key != "all"))
    return "\n".join(lines)


def trajectory_entry(record: Dict[str, Any],
                     recorded_at: Optional[str] = None) -> Dict[str, Any]:
    """The compact per-run summary kept in the trajectory: enough to
    plot kernel throughput over time, small enough to accumulate
    forever."""
    if recorded_at is None:
        recorded_at = bench_store.utc_stamp()
    entry: Dict[str, Any] = {
        "recorded_at": recorded_at,
        "python": record.get("python"),
        "campaign_best_wall_seconds":
            record.get("campaign", {}).get("best_wall_seconds"),
        "determinism": record.get("determinism", {}).get("all"),
    }
    for name, bench in sorted(record.get("microbench", {}).items()):
        kernels = bench.get("kernels", {})
        entry[f"{name}_events_per_sec"] = \
            kernels.get("current", {}).get("events_per_sec")
        entry[f"{name}_speedup_current"] = \
            bench.get("speedup_current_vs_legacy")
        entry[f"{name}_speedup_pooled"] = \
            bench.get("speedup_pooled_vs_legacy")
    return entry


def write_record(record: Dict[str, Any], path: str) -> None:
    """Append the record to the perf trajectory at ``path`` (the CI
    artifact / committed ``BENCH_kernel.json``): the shared
    ``{"bench", "latest", "trajectory"}`` document, with in-place
    migration of legacy single-record files."""
    bench_store.write_record(record, path, bench="kernel",
                             entry=trajectory_entry,
                             legacy_marker="microbench")


def read_latest(path: str) -> Optional[Dict[str, Any]]:
    """The most recent full record at ``path`` (handles both the
    trajectory document and a legacy bare record); ``None`` if absent
    or unreadable."""
    return bench_store.read_latest(path, legacy_marker="microbench")
