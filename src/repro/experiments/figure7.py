"""Figure 7 — expected rollback distance, coordination vs write-through.

The paper's headline quantitative result: over a sweep of the internal
message rate, the mean rollback distance a process suffers from a
hardware fault is *significantly* smaller under the protocol
coordination scheme (``E[D_co]``) than under the write-through approach
(``E[D_wt]``), shown on a log scale.

The paper omits its model's parameters ("due to space limitations, we
omit detailed discussion of the comparative study"), so the regime here
is chosen from the mechanism itself (see EXPERIMENTS.md for the
derivation):

* write-through establishes a stable checkpoint at *every validation
  event*, so ``E[D_wt] ~= 1/lambda_v`` — set by the external-message
  (AT) rate and flat in the internal rate;
* the coordinated scheme establishes every ``Delta`` seconds, rolling a
  dirty process back additionally over its current contamination span,
  so ``E[D_co] ~= Delta/2 + f_d / lambda_v`` with
  ``f_d = lambda_int / (lambda_int + lambda_v)``.

The coordination wins by a large factor exactly when processes are
*mostly clean* (``f_d`` well below 1, i.e. validations outpace internal
messages) and ``Delta`` is small against the validation gap; the sweep
runs in that regime, and the x-axis follows the paper (internal message
rate 60..200, here in messages per 1e5 seconds).  Both the discrete-
event measurement and the closed-form model are reported; an ablation
(:mod:`repro.experiments.ablations`) shows the predicted erosion of the
gap as ``f_d -> 1``.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import TYPE_CHECKING, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..parallel.cache import ResultCache

from ..analysis.model import (
    ModelParams,
    expected_rollback_coordinated,
    expected_rollback_write_through,
)
from ..app.faults import HardwareFaultPlan
from ..app.workload import WorkloadConfig
from ..coordination.scheme import Scheme, SystemConfig, build_system
from ..sim.rng import RngRegistry
from ..tb.blocking import TbConfig
from .reporting import format_table, log_series_bar
from .runner import run_campaign


@dataclasses.dataclass(frozen=True)
class Figure7Config:
    """Sweep parameters.

    ``internal_rates`` are the paper's x values; a value ``r`` means
    ``r / rate_unit`` internal messages per second.
    """

    internal_rates: Sequence[int] = (60, 80, 100, 120, 140, 160, 180, 200)
    rate_unit: float = 1e5
    external_rate: float = 0.01
    step_rate: float = 0.001
    internal_rate2: float = 0.001
    external_rate2: float = 0.002
    tb_interval: float = 6.0
    horizon: float = 40_000.0
    crash_rate: float = 1.0 / 500.0
    repair_time: float = 1.0
    replications: int = 3
    seed: int = 2001

    def scaled(self, factor: float) -> "Figure7Config":
        """A cheaper/heavier variant (fewer rates, shorter horizon)."""
        rates = tuple(self.internal_rates[:: max(1, int(1 / factor))]) \
            if factor < 1 else tuple(self.internal_rates)
        return dataclasses.replace(
            self, internal_rates=rates,
            horizon=self.horizon * factor,
            replications=max(1, int(self.replications * factor)))


@dataclasses.dataclass
class Figure7Point:
    """One x value of the figure."""

    internal_rate: int
    e_d_co: float
    ci_co: float
    n_co: int
    e_d_wt: float
    ci_wt: float
    n_wt: int
    model_co: float
    model_wt: float

    @property
    def measured_factor(self) -> float:
        """Measured E[D_wt] / E[D_co]."""
        return self.e_d_wt / self.e_d_co if self.e_d_co > 0 else float("inf")


def _system_config(config: Figure7Config, rate: int, scheme: Scheme,
                   seed: int) -> SystemConfig:
    return SystemConfig(
        scheme=scheme, seed=seed, horizon=config.horizon,
        tb=TbConfig(interval=config.tb_interval),
        workload1=WorkloadConfig(
            internal_rate=rate / config.rate_unit,
            external_rate=config.external_rate,
            step_rate=config.step_rate,
            horizon=config.horizon),
        workload2=WorkloadConfig(
            internal_rate=config.internal_rate2,
            external_rate=config.external_rate2,
            step_rate=config.step_rate,
            horizon=config.horizon),
        trace_enabled=False)


def _crash_plans(config: Figure7Config, seed: int) -> List[HardwareFaultPlan]:
    """A Poisson crash schedule shared by the paired schemes."""
    rng = RngRegistry(seed).stream("figure7.crashes")
    plans: List[HardwareFaultPlan] = []
    t = rng.expovariate(config.crash_rate)
    while t < config.horizon * 0.95:
        node = rng.choice(["N1a", "N1b", "N2"])
        plans.append(HardwareFaultPlan(node_id=node, crash_at=t,
                                       repair_time=config.repair_time))
        t += max(10.0 * config.repair_time, rng.expovariate(config.crash_rate))
    return plans


def _run_one(config: Figure7Config, rate: int, scheme: Scheme,
             seed: int) -> List[float]:
    system = build_system(_system_config(config, rate, scheme, seed))
    for plan in _crash_plans(config, seed):
        system.inject_crash(plan)
    system.run()
    assert system.hw_recovery is not None
    return system.hw_recovery.distances()


def run_point(config: Figure7Config, rate: int, *,
              workers: Optional[int] = None,
              cache: Optional["ResultCache"] = None) -> Figure7Point:
    """Measure one x value (both schemes, all replications) and attach
    the model predictions.

    Both schemes run under the same campaign label, so they draw the
    same replication seed list (the paired-comparison device) whether
    executed serially or sharded over ``workers`` processes; the cache
    fingerprint distinguishes them.
    """
    stats = {}
    for scheme in (Scheme.COORDINATED, Scheme.WRITE_THROUGH):
        fingerprint = ""
        if cache is not None:
            from ..parallel.cache import campaign_fingerprint
            # Replications are excluded: cells are keyed per replication
            # index, so growing a sweep reuses the cells it already has.
            fingerprint = campaign_fingerprint(
                {"experiment": "figure7",
                 "config": dataclasses.replace(config, replications=0),
                 "rate": rate, "scheme": scheme.value})
        stats[scheme] = run_campaign(
            f"fig7:r{rate}", config.seed, config.replications,
            functools.partial(_run_one, config, rate, scheme),
            workers=workers, cache=cache, fingerprint=fingerprint).stat
    params = ModelParams(
        internal_rate1=rate / config.rate_unit,
        external_rate1=config.external_rate,
        internal_rate2=config.internal_rate2,
        external_rate2=config.external_rate2,
        tb_interval=config.tb_interval)
    co, wt = stats[Scheme.COORDINATED], stats[Scheme.WRITE_THROUGH]
    return Figure7Point(
        internal_rate=rate,
        e_d_co=co.mean, ci_co=co.confidence_halfwidth(), n_co=co.count,
        e_d_wt=wt.mean, ci_wt=wt.confidence_halfwidth(), n_wt=wt.count,
        model_co=expected_rollback_coordinated(params),
        model_wt=expected_rollback_write_through(params))


def run_figure7(config: Figure7Config = Figure7Config(), *,
                workers: Optional[int] = None,
                cache: Optional["ResultCache"] = None) -> List[Figure7Point]:
    """The full sweep (optionally sharded over worker processes)."""
    return [run_point(config, rate, workers=workers, cache=cache)
            for rate in config.internal_rates]


def format_figure7(points: List[Figure7Point]) -> str:
    """The figure as a table plus a log-scale text plot."""
    rows = [[p.internal_rate, p.e_d_co, p.ci_co, p.e_d_wt, p.ci_wt,
             p.measured_factor, p.model_co, p.model_wt] for p in points]
    table = format_table(
        ["int.rate", "E[D_co]", "ci", "E[D_wt]", "ci", "wt/co",
         "model co", "model wt"],
        rows, title="Figure 7 — expected rollback distance (work-seconds)")
    lo = max(min(p.e_d_co for p in points) / 2.0, 0.1)
    hi = max(p.e_d_wt for p in points) * 2.0
    plot_lines = ["", "log-scale view (co='o', wt='x'):"]
    for p in points:
        plot_lines.append(
            f"  rate {p.internal_rate:>4}  co "
            f"{log_series_bar(p.e_d_co, lo, hi)}o ({p.e_d_co:.1f})")
        plot_lines.append(
            f"            wt {log_series_bar(p.e_d_wt, lo, hi)}x ({p.e_d_wt:.1f})")
    return table + "\n" + "\n".join(plot_lines)
