"""Warm-start speedup / equivalence measurement (``repro bench-warmstart``).

Warm-start execution (:mod:`repro.warmstart`) claims two things at
once: audit campaigns and shrink searches get **at least 3x** faster,
and the acceleration is **invisible** — identical violations, identical
errors, identical shrink results, identical canonical trace digests.
This module measures both halves and packages them as the
``BENCH_warmstart.json`` record:

* **campaign** — a late-divergence boundary campaign (every schedule
  shares the fault-free prefix and injects its faults in the final
  stretch of the horizon — the regime prefix-resume exists for), run
  cold and warm through the same :func:`repro.audit.campaign.run_audit`
  entry point;
* **shrink** — every violator the campaign found, shrunk cold and
  warm; the warm predicate resumes each candidate from the campaign's
  own image store (shrink candidates all share the violator's prefix,
  so the set is already built);
* **digests** — a sample of schedules (all violators plus a spread of
  clean ones) run cold and warm with ``fail_fast`` off, comparing
  full-run canonical trace digests bit for bit;
* **golden** — the pinned Fig. 6 digests recomputed and compared to
  ``tests/golden/fig6_traces.json``, proving the warm-start machinery
  (message-id capture, de-lambda'd substrate) left cold execution
  untouched.

Early-fault campaigns are deliberately *not* the headline: a fault at
``t=30`` of a 900-second horizon leaves almost no prefix to skip, and
warm-start degrades to a wash (the engine's cold fallback keeps it
correct).  The bench regime states the claim honestly: warm-start buys
its speedup where divergence points are late — which is exactly where
audits spend their time, since a fail-fast clean schedule must run to
the horizon anyway.
"""

from __future__ import annotations

import dataclasses
import json
import sys
import time
from typing import Any, Dict, List, Optional

from ..audit.auditor import OnlineAuditor
from ..audit.campaign import (
    SHRINK_MAX_REPLAYS,
    build_audit_system,
    run_audit,
    schedule_violates,
)
from ..audit.config import AuditConfig
from ..audit.generator import boundary_schedules, reference_timeline
from ..audit.golden import canonical_trace_lines, golden_digests, trace_digest
from ..audit.schedule import FaultSchedule
from ..audit.shrink import shrink_schedule
from ..errors import AuditViolation
from ..flock import FlockRunner
from ..warmstart import (
    ImageStore,
    WarmRunner,
    divergence_time,
    share_schedule_seeds,
)
from . import bench_store

#: The bench campaign: the naive scheme (it has real violations to
#: find and shrink) over a long horizon, shared-seed boundary schedules.
SCHEME = "naive"
SEED = 7
HORIZON = 900.0
CONFIG_SCHEDULES = 48

#: Schedules qualify for the bench slice when they diverge within this
#: many seconds of the horizon — the late-divergence regime.
DIVERGENCE_WINDOW = 60.0

#: How many schedules the digest cross-check phase replays both ways.
DIGEST_SAMPLE = 8

#: The flock regime: schedules diverging within this many seconds of
#: the horizon, densified with jittered variants.  This is where
#: suffix-fork wins over prefix-resume — a warm resume replays from the
#: last captured image (tb-boundary spaced), a fork starts at the
#: 1-second grid point right before the divergence.
FLOCK_WINDOW = 12.0

#: Jittered variants per qualifying schedule (sub-quantum offsets, so
#: variants cluster on a handful of cached fork dumps).
FLOCK_VARIANTS = 96

#: How many flock-slice schedules get the full cold-vs-fork canonical
#: trace digest comparison.
FLOCK_DIGEST_SAMPLE = 4

#: The pinned golden digests (relative to the repo root, where CI and
#: the committed artifact live).
GOLDEN_PATH = "tests/golden/fig6_traces.json"


def bench_config(horizon: float = HORIZON) -> AuditConfig:
    """The campaign configuration the bench runs under."""
    return AuditConfig(scheme=SCHEME, seed=SEED,
                       schedules=CONFIG_SCHEDULES, horizon=horizon)


def bench_slice(config: AuditConfig, timeline) -> List[FaultSchedule]:
    """The timed schedule list: shared-seed boundary schedules whose
    first fault lands within :data:`DIVERGENCE_WINDOW` of the horizon."""
    cutoff = config.horizon - DIVERGENCE_WINDOW
    shared = share_schedule_seeds(config, boundary_schedules(config, timeline))
    return [sched for sched in shared if divergence_time(sched) >= cutoff]


# ----------------------------------------------------------------------
# phase 1: the campaign, cold vs warm
# ----------------------------------------------------------------------
def measure_campaign(config: AuditConfig, schedules: List[FaultSchedule],
                     timeline, store: ImageStore) -> Dict[str, Any]:
    """One cold and one warm ``run_audit`` over the same schedules.

    The warm run fills ``store`` with the shared prefix's image set;
    the shrink and digest phases reuse it.
    """
    start = time.perf_counter()
    cold = run_audit(config, schedules=schedules, shrink=False)
    cold_seconds = time.perf_counter() - start
    start = time.perf_counter()
    warm = run_audit(config, schedules=schedules, shrink=False,
                     warmstart=True, image_store=store, timeline=timeline)
    warm_seconds = time.perf_counter() - start
    return {
        "schedules": len(schedules),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / max(warm_seconds, 1e-9),
        "violations": len(cold.violations),
        "errors": len(cold.errors),
        "violations_identical": cold.violations == warm.violations,
        "errors_identical": cold.errors == warm.errors,
        "warmstart": warm.warmstart,
        # Inputs to the later phases (violators come from the cold run;
        # the identity assertion above makes the choice immaterial).
        "violators": [entry["schedule"] for entry in cold.violations],
        "error_labels": [entry["schedule"]["label"]
                         for entry in cold.errors],
    }


# ----------------------------------------------------------------------
# phase 2: shrinking every violator, cold vs warm
# ----------------------------------------------------------------------
def measure_shrink(config: AuditConfig, violators: List[Dict],
                   timeline, store: ImageStore) -> Dict[str, Any]:
    """Shrink each violator twice and compare results and wall-clock."""
    runner = WarmRunner(config, store=store, timeline=timeline)
    rows: List[Dict[str, Any]] = []
    cold_total = warm_total = 0.0
    for sched_dict in violators:
        original = FaultSchedule.from_dict(sched_dict)
        start = time.perf_counter()
        cold = shrink_schedule(
            original, violates=lambda s: schedule_violates(config, s),
            horizon=config.horizon, max_replays=SHRINK_MAX_REPLAYS)
        cold_seconds = time.perf_counter() - start
        runner.ensure_images(original, force=True)
        start = time.perf_counter()
        warm = shrink_schedule(
            original, violates=runner.violates,
            horizon=config.horizon, max_replays=SHRINK_MAX_REPLAYS)
        warm_seconds = time.perf_counter() - start
        cold_total += cold_seconds
        warm_total += warm_seconds
        rows.append({
            "original": original.label,
            "shrunk": warm.schedule.describe(),
            "replays": cold.replays,
            "cache_hits": cold.cache_hits,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "identical": (cold.schedule.to_dict() == warm.schedule.to_dict()
                          and cold.replays == warm.replays
                          and cold.violated == warm.violated
                          and cold.cache_hits == warm.cache_hits),
        })
    return {
        "violators": len(rows),
        "cold_seconds": cold_total,
        "warm_seconds": warm_total,
        "speedup": cold_total / max(warm_total, 1e-9),
        "results_identical": all(row["identical"] for row in rows),
        "cases": rows,
        "warm_stats": runner.stats(),
    }


# ----------------------------------------------------------------------
# phase 3: full-trace digest equality, cold vs warm
# ----------------------------------------------------------------------
def _cold_traced_digest(config: AuditConfig, schedule: FaultSchedule) -> str:
    """Canonical trace digest of one cold, run-to-horizon audit."""
    system = build_audit_system(config, schedule)
    auditor = OnlineAuditor(system, fail_fast=False,
                            include_ground_truth=config.include_ground_truth)
    try:
        system.run()
    except AuditViolation:
        pass
    try:
        auditor.finalize()
    except AuditViolation:
        pass
    return trace_digest(canonical_trace_lines(system))


def digest_crosscheck(config: AuditConfig, schedules: List[FaultSchedule],
                      violators: List[Dict], error_labels: List[str],
                      timeline, store: ImageStore,
                      sample: int = DIGEST_SAMPLE) -> Dict[str, Any]:
    """Cold-vs-warm canonical trace digests for a schedule sample.

    All violators are included (their traces carry the findings), then
    an even spread of clean schedules up to ``sample`` total.  Erroring
    schedules are excluded — their runs abort mid-simulation and leave
    no complete trace to digest (the campaign phase already asserted
    the two paths report identical errors for them).
    """
    skip = set(error_labels)
    picked: List[FaultSchedule] = [FaultSchedule.from_dict(d)
                                   for d in violators]
    picked_labels = {sched.label for sched in picked} | skip
    clean = [s for s in schedules if s.label not in picked_labels]
    want = max(0, sample - len(picked))
    if clean and want:
        stride = max(1, len(clean) // want)
        picked += clean[::stride][:want]

    runner = WarmRunner(config, store=store, timeline=timeline)
    rows: List[Dict[str, Any]] = []
    for sched in picked:
        cold_digest = _cold_traced_digest(config, sched)
        _findings, system = runner.traced_audit(sched, fail_fast=False)
        warm_digest = trace_digest(canonical_trace_lines(system))
        rows.append({"label": sched.label, "digest": cold_digest,
                     "identical": cold_digest == warm_digest})
    return {
        "sampled": len(rows),
        "warm_resumes": runner.warm_runs,
        "identical": all(row["identical"] for row in rows) and bool(rows),
        "cases": rows,
    }


# ----------------------------------------------------------------------
# phase 4: the flock regime — suffix-fork vs prefix-resume
# ----------------------------------------------------------------------
def _jittered(schedule: FaultSchedule, offset: float, horizon: float,
              variant: int) -> Optional[FaultSchedule]:
    """``schedule`` with every fault instant shifted by ``offset``
    (``None`` if any instant would leave the horizon)."""
    software = tuple(dataclasses.replace(s, activate_at=s.activate_at + offset)
                     for s in schedule.software)
    crashes = tuple(dataclasses.replace(c, crash_at=c.crash_at + offset)
                    for c in schedule.crashes)
    times = ([s.activate_at for s in software] +
             [c.crash_at for c in crashes])
    if not times or max(times) >= horizon - 1.0 or min(times) <= 0.0:
        return None
    return dataclasses.replace(schedule, label=f"{schedule.label}~j{variant}",
                               software=software, crashes=crashes)


def flock_slice(config: AuditConfig, timeline,
                variants: int = FLOCK_VARIANTS) -> List[FaultSchedule]:
    """The flock-regime schedule list: every boundary schedule whose
    faults all land within :data:`FLOCK_WINDOW` of the horizon,
    densified with ``variants`` sub-quantum jittered copies each — the
    dense near-boundary exploration flock batching exists for."""
    cutoff = config.horizon - FLOCK_WINDOW
    shared = share_schedule_seeds(config, boundary_schedules(config, timeline))
    timed = [(sched, ([s.activate_at for s in sched.software] +
                      [c.crash_at for c in sched.crashes]))
             for sched in shared]
    timed = [(sched, times) for sched, times in timed if times]
    sources = [sched for sched, times in timed if min(times) >= cutoff]
    if not sources:
        # Short horizons may leave the strict window empty (no boundary
        # probe lands that late); fall back to the latest-diverging
        # schedules so reduced smoke runs still exercise the fork path.
        timed.sort(key=lambda pair: min(pair[1]))
        sources = [sched for sched, _times in timed[-3:]]
    dense: List[FaultSchedule] = []
    for sched in sources:
        # Spread the variants over a fixed ~±3.7s band regardless of
        # how many there are: denser exploration of the same boundary,
        # not a wider one (wide bands leave the flock regime).  The
        # step stays incommensurate with the 1s fork quantum, so
        # variants cluster on a handful of dumps without aligning.
        step = 7.44 / variants
        for k in range(variants):
            variant = _jittered(sched, (k - variants // 2) * step,
                                config.horizon, k)
            if variant is not None:
                dense.append(variant)
    return dense


def measure_flock(config: AuditConfig, schedules: List[FaultSchedule],
                  timeline, store: ImageStore,
                  sample: int = FLOCK_DIGEST_SAMPLE) -> Dict[str, Any]:
    """Cold, warm, and flock ``run_audit`` over the flock slice.

    The headline ratio is warm/flock — the speedup of suffix-forking
    over the resume path the campaign phase already benchmarked — with
    cold/flock recorded alongside.  A digest sample replays schedules
    cold and forked with ``fail_fast`` off and compares canonical
    traces bit for bit.
    """
    start = time.perf_counter()
    cold = run_audit(config, schedules=schedules, shrink=False)
    cold_seconds = time.perf_counter() - start
    start = time.perf_counter()
    warm = run_audit(config, schedules=schedules, shrink=False,
                     warmstart=True, image_store=store, timeline=timeline)
    warm_seconds = time.perf_counter() - start
    # The flock run consumes the same pre-built image store the warm
    # run did: each group's template thaws from the stored prefix image
    # and advances only the remaining gap (the intended layering —
    # decode each image once, fork per schedule).
    start = time.perf_counter()
    flock = run_audit(config, schedules=schedules, shrink=False,
                      flock=True, warmstart=True, image_store=store,
                      timeline=timeline)
    flock_seconds = time.perf_counter() - start

    runner = FlockRunner(config, timeline=timeline)
    runner.plan(schedules)
    digest_rows: List[Dict[str, Any]] = []
    stride = max(1, len(schedules) // max(1, sample))
    for sched in schedules[::stride][:sample]:
        cold_digest = _cold_traced_digest(config, sched)
        _findings, system = runner.traced_audit(sched, fail_fast=False)
        digest_rows.append({
            "label": sched.label, "digest": cold_digest,
            "identical": cold_digest == trace_digest(
                canonical_trace_lines(system)),
        })
    return {
        "schedules": len(schedules),
        "window": FLOCK_WINDOW,
        "variants": FLOCK_VARIANTS,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "flock_seconds": flock_seconds,
        "speedup": warm_seconds / max(flock_seconds, 1e-9),
        "speedup_vs_cold": cold_seconds / max(flock_seconds, 1e-9),
        "violations": len(cold.violations),
        "violations_identical": (flock.violations == cold.violations
                                 and warm.violations == cold.violations),
        "errors_identical": (flock.errors == cold.errors
                             and warm.errors == cold.errors),
        "digests_identical": (all(r["identical"] for r in digest_rows)
                              and bool(digest_rows)),
        "digest_sampled": len(digest_rows),
        "flock_stats": flock.warmstart,
    }


# ----------------------------------------------------------------------
# phase 5: the pinned Fig. 6 golden digests still hold
# ----------------------------------------------------------------------
def golden_check(path: str = GOLDEN_PATH) -> Dict[str, Any]:
    """Recompute the golden-trace digests and compare to the pinned file."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            pinned = json.load(fh)
    except OSError:
        return {"available": False, "path": path, "identical": None}
    recomputed = golden_digests()
    return {
        "available": True,
        "path": path,
        "cases": len(recomputed),
        "identical": recomputed == pinned.get("digests"),
    }


# ----------------------------------------------------------------------
# the BENCH_warmstart.json record
# ----------------------------------------------------------------------
def bench_record(horizon: float = HORIZON,
                 digest_sample: int = DIGEST_SAMPLE,
                 golden_path: Optional[str] = GOLDEN_PATH) -> Dict[str, Any]:
    """Run every phase and assemble the perf-trajectory record."""
    config = bench_config(horizon)
    timeline = reference_timeline(config)
    schedules = bench_slice(config, timeline)
    store = ImageStore()

    campaign = measure_campaign(config, schedules, timeline, store)
    violators = campaign.pop("violators")
    error_labels = campaign.pop("error_labels")
    shrink = measure_shrink(config, violators, timeline, store)
    digests = digest_crosscheck(config, schedules, violators, error_labels,
                                timeline, store, sample=digest_sample)
    flock = measure_flock(config, flock_slice(config, timeline),
                          timeline, store)
    golden = (golden_check(golden_path) if golden_path is not None
              else {"available": False, "path": None, "identical": None})

    equivalent = (campaign["violations_identical"]
                  and campaign["errors_identical"]
                  and shrink["results_identical"]
                  and digests["identical"]
                  and flock["violations_identical"]
                  and flock["errors_identical"]
                  and flock["digests_identical"]
                  and golden["identical"] is not False)
    return {
        "bench": "warmstart",
        "python": sys.version.split()[0],
        "config": config.to_dict(),
        "fingerprint": config.fingerprint(),
        "divergence_window": DIVERGENCE_WINDOW,
        "campaign": campaign,
        "shrink": shrink,
        "digests": digests,
        "flock": flock,
        "golden": golden,
        "equivalent": equivalent,
    }


def format_record(record: Dict[str, Any]) -> str:
    """Human-oriented summary lines for the CLI."""
    campaign = record["campaign"]
    shrink = record["shrink"]
    digests = record["digests"]
    flock = record.get("flock")
    golden = record["golden"]
    lines = [
        f"campaign: {campaign['schedules']} late-divergence schedules  "
        f"cold {campaign['cold_seconds']:.2f}s  "
        f"warm {campaign['warm_seconds']:.2f}s  "
        f"({campaign['speedup']:.2f}x)  "
        f"violations={campaign['violations']} errors={campaign['errors']}",
        f"  shrink: {shrink['violators']} violators  "
        f"cold {shrink['cold_seconds']:.2f}s  "
        f"warm {shrink['warm_seconds']:.2f}s  "
        f"({shrink['speedup']:.2f}x)",
        f" digests: {digests['sampled']} schedules cross-checked, "
        f"{digests['warm_resumes']} warm resumes -> "
        f"{'identical' if digests['identical'] else 'MISMATCH'}",
    ]
    if flock is not None:
        lines.append(
            f"   flock: {flock['schedules']} near-boundary schedules  "
            f"warm {flock['warm_seconds']:.2f}s  "
            f"flock {flock['flock_seconds']:.2f}s  "
            f"({flock['speedup']:.2f}x vs warm, "
            f"{flock['speedup_vs_cold']:.2f}x vs cold)")
    lines += [
        f"  golden: " + (
            f"{golden['cases']} Fig. 6 cases -> "
            f"{'identical' if golden['identical'] else 'MISMATCH'}"
            if golden["available"] else "pinned file unavailable (skipped)"),
        f"   equiv: {'ok' if record['equivalent'] else 'FAIL'}",
    ]
    return "\n".join(lines)


def trajectory_entry(record: Dict[str, Any],
                     recorded_at: Optional[str] = None) -> Dict[str, Any]:
    """The compact per-run summary kept in the trajectory: enough to
    plot the speedup over time, small enough to accumulate forever."""
    campaign = record.get("campaign", {})
    shrink = record.get("shrink", {})
    flock = record.get("flock")
    if recorded_at is None:
        recorded_at = bench_store.utc_stamp()
    entry = {
        "recorded_at": recorded_at,
        "python": record.get("python"),
        "fingerprint": record.get("fingerprint"),
        "campaign_speedup": campaign.get("speedup"),
        "shrink_speedup": shrink.get("speedup"),
        "campaign_cold_seconds": campaign.get("cold_seconds"),
        "campaign_warm_seconds": campaign.get("warm_seconds"),
        "equivalent": record.get("equivalent"),
    }
    # Records from before the flock phase existed stay compact.
    if flock is not None:
        entry["flock_speedup"] = flock.get("speedup")
        entry["flock_seconds"] = flock.get("flock_seconds")
    return entry


def write_record(record: Dict[str, Any], path: str) -> None:
    """Append ``record`` to the perf trajectory at ``path``.

    The file holds ``{"bench", "latest", "trajectory"}``: the full most
    recent record plus one compact :func:`trajectory_entry` per run, so
    ``BENCH_warmstart.json`` accumulates a speedup history instead of
    forgetting every run but the last.  A legacy single-record file is
    migrated in place (its record becomes the first trajectory entry,
    stamped with the file's mtime).
    """
    bench_store.write_record(record, path, bench="warmstart",
                             entry=trajectory_entry,
                             legacy_marker="campaign")


def read_latest(path: str) -> Optional[Dict[str, Any]]:
    """The most recent full record at ``path`` (handles both the
    trajectory document and a legacy bare record); ``None`` if absent
    or unreadable."""
    return bench_store.read_latest(path, legacy_marker="campaign")
