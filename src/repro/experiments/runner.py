"""Replication management for experiment campaigns.

Each replication runs one seeded system and extracts a list of metric
samples; the runner merges replications into a
:class:`~repro.sim.monitor.RunningStat` and derives child seeds so that
replication ``k`` of one configuration is paired with replication ``k``
of another (variance reduction for paired comparisons such as
E[D_co] vs E[D_wt]).

Campaigns run serially by default; pass ``workers`` to shard the
replications across worker processes (see :mod:`repro.parallel`) and
``cache`` to persist completed cells on disk.  Both paths derive the
identical seed list, so a parallel campaign reproduces the serial
sample sequence exactly.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional

from ..sim.monitor import RunningStat
from ..sim.rng import derive_seed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..parallel.cache import ResultCache
    from ..parallel.progress import ProgressReporter
    from ..parallel.supervisor import ShardSupervisor


@dataclasses.dataclass
class CampaignResult:
    """Aggregated outcome of a replicated campaign."""

    label: str
    stat: RunningStat
    samples: List[float]
    replications: int

    @property
    def mean(self) -> float:
        """Mean over all samples."""
        return self.stat.mean

    @property
    def ci95(self) -> float:
        """95% confidence half-width of the mean."""
        return self.stat.confidence_halfwidth()

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (cross-process transport / cache format)."""
        return {
            "label": self.label,
            "stat": self.stat.to_dict(),
            "samples": list(self.samples),
            "replications": self.replications,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            label=str(data["label"]),
            stat=RunningStat.from_dict(data["stat"]),  # type: ignore[arg-type]
            samples=[float(v) for v in data["samples"]],  # type: ignore[union-attr]
            replications=int(data["replications"]))  # type: ignore[arg-type]


def replication_seeds(master_seed: int, label: str, replications: int) -> List[int]:
    """Stable child seeds for a campaign's replications."""
    return [derive_seed(master_seed, f"{label}:rep{k}") % (1 << 31)
            for k in range(replications)]


def run_campaign(label: str, master_seed: int, replications: int,
                 run_one: Callable[[int], Iterable[float]], *,
                 workers: Optional[int] = None,
                 cache: Optional["ResultCache"] = None,
                 fingerprint: str = "",
                 progress: Optional["ProgressReporter"] = None,
                 supervisor: Optional["ShardSupervisor"] = None
                 ) -> CampaignResult:
    """Run ``replications`` seeded replications and merge the samples.

    ``run_one(seed)`` builds+runs one system and returns metric samples
    (e.g. rollback distances).  With ``workers`` > 1 the replications
    are sharded across worker processes (``run_one`` must be picklable:
    a module-level function or a :func:`functools.partial` of one);
    with ``cache`` set, completed replications are read from / written
    to disk keyed by ``(label, master_seed, replication, fingerprint)``.
    """
    if workers is not None and workers > 1:
        from ..parallel.pool import ParallelCampaignRunner
        from ..parallel.progress import ProgressReporter
        if progress is None:
            progress = ProgressReporter(label)
        runner = ParallelCampaignRunner(workers=workers, cache=cache,
                                        supervisor=supervisor,
                                        progress=progress)
        return runner.run(label, master_seed, replications, run_one,
                          fingerprint=fingerprint)

    from ..parallel.cache import CacheKey

    stat = RunningStat()
    samples: List[float] = []
    for rep_index, seed in enumerate(
            replication_seeds(master_seed, label, replications)):
        cell: Optional[List[float]] = None
        if cache is not None:
            cell = cache.get(CacheKey(label, master_seed, rep_index,
                                      fingerprint))
        if cell is None:
            cell = [float(v) for v in run_one(seed)]
            if cache is not None:
                cache.put(CacheKey(label, master_seed, rep_index,
                                   fingerprint), cell)
        add = stat.add
        for value in cell:
            add(value)
        samples.extend(cell)
    return CampaignResult(label=label, stat=stat, samples=samples,
                          replications=replications)
