"""Replication management for experiment campaigns.

Each replication runs one seeded system and extracts a list of metric
samples; the runner merges replications into a
:class:`~repro.sim.monitor.RunningStat` and derives child seeds so that
replication ``k`` of one configuration is paired with replication ``k``
of another (variance reduction for paired comparisons such as
E[D_co] vs E[D_wt]).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, List, Sequence

from ..sim.monitor import RunningStat
from ..sim.rng import derive_seed


@dataclasses.dataclass
class CampaignResult:
    """Aggregated outcome of a replicated campaign."""

    label: str
    stat: RunningStat
    samples: List[float]
    replications: int

    @property
    def mean(self) -> float:
        """Mean over all samples."""
        return self.stat.mean

    @property
    def ci95(self) -> float:
        """95% confidence half-width of the mean."""
        return self.stat.confidence_halfwidth()


def replication_seeds(master_seed: int, label: str, replications: int) -> List[int]:
    """Stable child seeds for a campaign's replications."""
    return [derive_seed(master_seed, f"{label}:rep{k}") % (1 << 31)
            for k in range(replications)]


def run_campaign(label: str, master_seed: int, replications: int,
                 run_one: Callable[[int], Iterable[float]]) -> CampaignResult:
    """Run ``replications`` seeded replications and merge the samples.

    ``run_one(seed)`` builds+runs one system and returns metric samples
    (e.g. rollback distances).
    """
    stat = RunningStat()
    samples: List[float] = []
    for seed in replication_seeds(master_seed, label, replications):
        for value in run_one(seed):
            stat.add(value)
            samples.append(value)
    return CampaignResult(label=label, stat=stat, samples=samples,
                          replications=replications)
