"""Performance-cost comparison of the schemes (the paper's stated
follow-up work: "quantifying its benefits with respect to both
dependability enhancement and performance cost reduction").

The paper argues twice that cost stays low — MDCD keeps checkpoints in
RAM and validates only external messages; the coordination "preserves
and enhances the features and advantages of the individual protocols
... keeping the performance cost low".  This harness measures, per
scheme on an identical fault-free workload:

* **blocking** — fraction of process-time spent inside blocking windows
  and the number of sends deferred by them;
* **storage** — checkpoints and bytes written to volatile and stable
  storage per simulated hour;
* **messaging** — protocol messages ("passed AT" notifications) per
  application message, and acceptance tests run;
* a derived **slowdown proxy**: blocked time plus (weighted) storage
  traffic per unit time.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Dict, List, Optional

from ..app.workload import WorkloadConfig
from ..coordination.scheme import Scheme, SystemConfig, build_system
from ..tb.blocking import TbConfig
from .reporting import format_table
from .runner import replication_seeds


@dataclasses.dataclass(frozen=True)
class OverheadConfig:
    """Workload for the comparison (identical across schemes).

    ``replications`` > 1 repeats each scheme's measurement over derived
    seeds (the same seed list for every scheme) and reports the mean
    cost profile.
    """

    seed: int = 33
    horizon: float = 8_000.0
    tb_interval: float = 30.0
    internal_rate: float = 0.1
    external_rate: float = 0.02
    replications: int = 1
    schemes: tuple = (Scheme.MDCD_ONLY, Scheme.WRITE_THROUGH,
                      Scheme.NAIVE, Scheme.COORDINATED)


@dataclasses.dataclass
class OverheadObservation:
    """Measured cost profile of one scheme."""

    scheme: str
    blocked_time_fraction: float
    deferred_sends: int
    buffered_deliveries: int
    volatile_saves_per_hour: float
    volatile_kb_per_hour: float
    stable_saves_per_hour: float
    stable_kb_per_hour: float
    notifications_per_app_message: float
    at_runs: int
    #: Checkpoint KiB/h by checkpoint kind (type-1/type-2/pseudo/
    #: stable), merged over the volatile and stable stores — the new
    #: snapshot-pipeline accounting.
    kib_per_hour_by_kind: Dict[str, float] = dataclasses.field(default_factory=dict)
    #: Checkpoint KiB/h by snapshot section (app/mdcd/journals/...).
    kib_per_hour_by_section: Dict[str, float] = dataclasses.field(default_factory=dict)

    def as_row(self) -> List:
        """The observation as a report-table row."""
        return [
            self.scheme,
            f"{self.blocked_time_fraction * 100:.3f}%",
            self.deferred_sends,
            self.buffered_deliveries,
            f"{self.volatile_saves_per_hour:.1f}",
            f"{self.volatile_kb_per_hour:.1f}",
            f"{self.stable_saves_per_hour:.1f}",
            f"{self.stable_kb_per_hour:.1f}",
            f"{self.notifications_per_app_message:.3f}",
            self.at_runs,
        ]


def measure_scheme(config: OverheadConfig, scheme: Scheme) -> OverheadObservation:
    """Run one scheme and extract its cost profile."""
    horizon = config.horizon
    system = build_system(SystemConfig(
        scheme=scheme, seed=config.seed, horizon=horizon,
        tb=TbConfig(interval=config.tb_interval),
        workload1=WorkloadConfig(internal_rate=config.internal_rate,
                                 external_rate=config.external_rate,
                                 step_rate=0.02, horizon=horizon),
        workload2=WorkloadConfig(internal_rate=config.internal_rate / 2.0,
                                 external_rate=config.external_rate,
                                 step_rate=0.02, horizon=horizon),
        # The cost profile reads blocking.start records (and counters);
        # everything else in the trace would be dead weight.
        trace_categories=("blocking.start",)))
    system.run()

    blocked_time = sum(rec.data["length"]
                       for rec in system.trace.records("blocking.start"))
    process_time = horizon * len(system.process_list())
    deferred = sum(p.counters.get("blocked.deferred_send")
                   for p in system.process_list())
    buffered = sum(sum(v for k, v in p.counters.as_dict().items()
                       if k.startswith("blocked.buffered."))
                   for p in system.process_list())
    volatile_saves = sum(p.node.volatile.saves for p in system.process_list())
    volatile_bytes = sum(p.node.volatile.bytes_written
                         for p in system.process_list())
    stable_saves = sum(p.node.stable.saves for p in system.process_list())
    stable_bytes = sum(p.node.stable.bytes_written
                       for p in system.process_list())
    app_messages = sum(p.counters.get("sent.internal")
                       + p.counters.get("sent.external")
                       for p in system.process_list())
    notifications = sum(p.counters.get("sent.passed_at")
                        for p in system.process_list())
    at_runs = sum(p.counters.get("at.pass") + p.counters.get("at.fail")
                  for p in system.process_list())
    hours = horizon / 3600.0
    by_kind: Dict[str, float] = {}
    by_section: Dict[str, float] = {}
    for p in system.process_list():
        for store in (p.node.volatile, p.node.stable):
            for kind, nbytes in store.bytes_by_kind.items():
                by_kind[kind] = by_kind.get(kind, 0.0) + nbytes / 1024.0 / hours
            for section, nbytes in store.bytes_by_section.items():
                by_section[section] = (by_section.get(section, 0.0)
                                       + nbytes / 1024.0 / hours)
    return OverheadObservation(
        scheme=scheme.value,
        blocked_time_fraction=blocked_time / process_time,
        deferred_sends=deferred,
        buffered_deliveries=buffered,
        volatile_saves_per_hour=volatile_saves / hours,
        volatile_kb_per_hour=volatile_bytes / 1024.0 / hours,
        stable_saves_per_hour=stable_saves / hours,
        stable_kb_per_hour=stable_bytes / 1024.0 / hours,
        notifications_per_app_message=(notifications / app_messages
                                       if app_messages else 0.0),
        at_runs=at_runs,
        kib_per_hour_by_kind=by_kind,
        kib_per_hour_by_section=by_section)


def _measure_cell(config: OverheadConfig, cell) -> OverheadObservation:
    """One (scheme, seed) measurement — module-level so worker
    processes can receive it."""
    scheme, seed = cell
    return measure_scheme(dataclasses.replace(config, seed=seed), scheme)


def _mean_observations(scheme: Scheme,
                       observations: List[OverheadObservation]
                       ) -> OverheadObservation:
    """Field-wise mean cost profile over replications (dict-valued
    fields average key-wise, treating a missing key as zero)."""
    n = len(observations)
    means = {}
    for field in dataclasses.fields(OverheadObservation):
        if field.name == "scheme":
            continue
        values = [getattr(o, field.name) for o in observations]
        if isinstance(values[0], dict):
            keys = sorted({k for v in values for k in v})
            means[field.name] = {k: sum(v.get(k, 0.0) for v in values) / n
                                 for k in keys}
        else:
            means[field.name] = sum(values) / n
    for name in ("deferred_sends", "buffered_deliveries", "at_runs"):
        means[name] = round(means[name])
    return OverheadObservation(scheme=scheme.value, **means)


def run_overhead(config: OverheadConfig = OverheadConfig(), *,
                 workers: Optional[int] = None
                 ) -> Dict[str, OverheadObservation]:
    """Measure every scheme on the identical workload.

    With ``workers`` the (scheme × replication) cells are distributed
    over worker processes; each scheme sees the same seed list, so the
    comparison stays paired.
    """
    seeds = (replication_seeds(config.seed, "overhead", config.replications)
             if config.replications > 1 else [config.seed])
    cells = [(scheme, seed) for scheme in config.schemes for seed in seeds]
    from ..parallel.pool import parallel_map
    observations = parallel_map(functools.partial(_measure_cell, config),
                                cells, workers=workers)
    by_scheme: Dict[Scheme, List[OverheadObservation]] = {}
    for (scheme, _), obs in zip(cells, observations):
        by_scheme.setdefault(scheme, []).append(obs)
    return {scheme.value: _mean_observations(scheme, obs_list)
            for scheme, obs_list in by_scheme.items()}


def _format_breakdown(observations: Dict[str, OverheadObservation],
                      field: str, title: str) -> str:
    """One breakdown table: schemes as rows, dict keys as columns."""
    keys = sorted({k for obs in observations.values()
                   for k in getattr(obs, field)})
    if not keys:
        return ""
    rows = [[obs.scheme] + [f"{getattr(obs, field).get(k, 0.0):.1f}"
                            for k in keys]
            for obs in observations.values()]
    return format_table(["scheme"] + keys, rows, title=title)


def format_overhead(observations: Dict[str, OverheadObservation]) -> str:
    """Render the comparison table plus the checkpoint-byte breakdowns
    (where do checkpoint bytes go, by kind and by snapshot section)."""
    parts = [format_table(
        ["scheme", "blocked time", "deferred sends", "buffered recv",
         "vol saves/h", "vol KiB/h", "stable saves/h", "stable KiB/h",
         "notif/app-msg", "AT runs"],
        [obs.as_row() for obs in observations.values()],
        title="Performance cost by scheme (identical fault-free workload)")]
    for field, title in (
            ("kib_per_hour_by_kind",
             "Checkpoint KiB/h by checkpoint kind"),
            ("kib_per_hour_by_section",
             "Checkpoint KiB/h by snapshot section")):
        table = _format_breakdown(observations, field, title)
        if table:
            parts.append(table)
    return "\n\n".join(parts)
