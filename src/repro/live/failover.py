"""Heartbeat-driven shadow takeover for the live backend.

The sim's :class:`~repro.mdcd.recovery.SoftwareRecoveryManager` runs the
whole takeover in one place because it holds references to every
process.  On the live backend the same algorithm executes
*distributedly*, which is how the paper means it: each process makes its
**local** decision (dirty -> roll back to the volatile checkpoint, clean
-> roll forward) with no coordination — the MDCD theorems are exactly
the license to do that.

* The **shadow**'s failure detector (heartbeat timeout on the active)
  triggers :func:`shadow_takeover`: bump the incarnation, local
  decision, re-send the suppressed log beyond ``VR``, switch to the
  :class:`~repro.mdcd.recovery.TakeoverEngine`, re-send unacknowledged
  messages, end guarded operation, and broadcast a ``takeover`` control
  frame.
* Each **peer** receiving the broadcast runs :func:`peer_adopt_takeover`:
  adopt the new incarnation, local decision, stop addressing the
  deposed active, end guarded operation, re-send unacknowledged
  messages through surviving routes.

Both halves are line-for-line ports of the manager's per-process
slices, so the decisions they trace are the ones the sim oracle
predicts.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import RecoveryError
from ..host import FtProcess
from ..mdcd.recovery import TakeoverEngine
from ..topology.engines import TopologyTakeoverEngine
from ..types import MessageKind, ProcessId, RecoveryAction


def _local_decision(process: FtProcess) -> RecoveryAction:
    """The paper's local rule (SoftwareRecoveryManager._local_decision,
    minus the crashed-survivor case — a dead live process simply never
    runs this)."""
    if process.mdcd.dirty_bit == 1:
        checkpoint = process.volatile_checkpoint()
        if checkpoint is None:
            checkpoint = process.node.stable.peek(process.process_id)
            process.counters.bump("recovery.degraded_fallback")
            process.trace.record(process.sim.now, "recovery.degraded_fallback",
                                 process.process_id)
        if checkpoint is None:
            raise RecoveryError(
                f"{process.process_id} is dirty but has no checkpoint to roll back to")
        process.restore_from(checkpoint, "software")
        return RecoveryAction.ROLLBACK
    process.roll_forward("software")
    return RecoveryAction.ROLL_FORWARD


def _resend_unacknowledged(process: FtProcess, deposed: ProcessId) -> int:
    """Re-send this process's unacknowledged messages under the new
    incarnation, writing off those addressed to the deposed active."""
    resent = 0
    for message in process.acks.unacknowledged():
        if message.receiver == deposed:
            process.acks.acked(message.msg_id)
            continue
        process.resend(message)
        resent += 1
    return resent


def drop_recipient(engine, dead_id: ProcessId) -> None:
    """Stop ``engine`` addressing ``dead_id``: covers the paper-shape
    recipient list and every topology-engine recipient collection."""
    recipients = getattr(engine, "component1_recipients", None)
    if recipients is not None:
        engine.component1_recipients = [
            pid for pid in recipients if pid != dead_id]
    for attr in ("shadows", "peers", "other_peers", "notification_recipients"):
        pids = getattr(engine, attr, None)
        if isinstance(pids, list):
            setattr(engine, attr, [pid for pid in pids if pid != dead_id])


def shadow_takeover(shadow: FtProcess, active_id: ProcessId,
                    peer_id: ProcessId, incarnation,
                    reason: str = "heartbeat-timeout",
                    peer_ids: Optional[List[ProcessId]] = None
                    ) -> Dict[str, object]:
    """Promote the shadow after its failure detector condemns the
    active.  Returns a summary for the harness/decision artifact.

    ``peer_ids`` switches the promoted shadow onto the topology
    takeover engine (stimulus-routed sends into the peer mesh); left
    ``None``, the paper-shape :class:`TakeoverEngine` addressing the
    single peer is used.
    """
    trace = shadow.trace
    trace.record(shadow.sim.now, "recovery.software.start",
                 shadow.process_id, failed=reason)
    incarnation.bump()
    decision = _local_decision(shadow)
    # Promote: transmit the suppressed, never-validated tail of the
    # message log (born valid — the shadow's state is clean after its
    # local decision), then switch engines and leave guarded mode.
    vr = shadow.mdcd.vr
    to_resend = shadow.msg_log.entries_after(vr)
    suppressed = shadow.msg_log.reclaim_up_to(vr) if vr is not None else 0
    for entry in to_resend:
        message = entry.message
        if message.kind is MessageKind.EXTERNAL:
            shadow.send_external(message.payload, validated=True)
        else:
            shadow.send_internal(message.payload, entry.destinations(),
                                 sn=message.sn, dirty_bit=0, validated=True,
                                 ndc=shadow.current_ndc())
    shadow.msg_log.clear()
    if peer_ids is not None:
        shadow.software = TopologyTakeoverEngine(shadow, list(peer_ids))
    else:
        shadow.software = TakeoverEngine(shadow, peer=peer_id)
    shadow.mdcd.guarded = False
    shadow.driver.resume()
    resent = _resend_unacknowledged(shadow, active_id)
    trace.record(shadow.sim.now, "recovery.software.done", shadow.process_id,
                 decisions={str(shadow.process_id): decision.value},
                 resent=len(to_resend) + resent, suppressed=suppressed)
    return {
        "decision": decision.value,
        "incarnation": incarnation.value,
        "log_resent": len(to_resend),
        "log_suppressed": suppressed,
        "unacked_resent": resent,
        "reason": reason,
    }


def peer_adopt_takeover(peer: FtProcess, active_id: ProcessId,
                        incarnation, new_incarnation: int) -> Optional[Dict[str, object]]:
    """Apply a takeover broadcast at a surviving peer.  Idempotent: a
    duplicate or stale broadcast is ignored."""
    if incarnation.value >= new_incarnation:
        return None
    incarnation.value = new_incarnation
    decision = _local_decision(peer)
    drop_recipient(peer.software, active_id)
    peer.mdcd.guarded = False
    resent = _resend_unacknowledged(peer, active_id)
    peer.trace.record(peer.sim.now, "recovery.takeover.adopted",
                      peer.process_id, incarnation=new_incarnation)
    return {
        "decision": decision.value,
        "incarnation": new_incarnation,
        "unacked_resent": resent,
    }
