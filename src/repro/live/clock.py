"""Wall-clock :class:`~repro.runtime.ports.ClockSource`.

The live backend's "true time" is the OS monotonic clock, rebased so a
run starts near zero (like a simulation).  Local time and true time
coincide — a single host has no inter-node skew — so the mapping is the
identity and resynchronization only resets the drift-elapsed marker.
The TB blocking formula then degenerates to ``delta`` plus the write
latency, which is exactly right for co-located processes.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional


class WallClock:
    """Identity local clock over ``time.monotonic()``."""

    def __init__(self, origin: Optional[float] = None) -> None:
        self._origin = time.monotonic() if origin is None else origin
        self._last_resync = self._read()
        self._resync_listeners: List[Callable[["WallClock"], None]] = []

    def _read(self) -> float:
        return time.monotonic() - self._origin

    # ------------------------------------------------------------------
    @property
    def drift(self) -> float:
        """Wall clocks are their own reference: no modelled drift."""
        return 0.0

    def now(self) -> float:
        """Current reading (local == true on a single host)."""
        return self._read()

    def read(self, true_time: float) -> float:
        return true_time

    def true_time_of(self, local_time: float) -> float:
        return local_time

    def elapsed_since_resync(self) -> float:
        return self._read() - self._last_resync

    def resync(self, reference_local: Optional[float] = None) -> float:
        """Reset the drift-elapsed marker; the identity anchoring cannot
        move.  Listeners (timer services) are notified as on any clock."""
        self._last_resync = self._read()
        for listener in list(self._resync_listeners):
            listener(self)
        return self._read()

    def on_resync(self, listener: Callable[["WallClock"], None]) -> None:
        self._resync_listeners.append(listener)
