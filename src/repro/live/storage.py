"""File-backed stable storage — the live
:class:`~repro.runtime.ports.StablePort`.

Durability is the whole contract: a checkpoint whose ``save`` returned
must survive ``kill -9`` of the owning process.  Each checkpoint is
pickled to a temporary file, flushed, ``fsync``'d, atomically renamed
into place, and the directory entry is fsync'd too — the standard
write-new/rename/sync discipline, so a crash leaves either the old
state or the new, never a torn file.  The in-memory
:class:`~repro.sim.storage.StableStore` chain fronts the files (same
surface, same trimming, same accounting); a restarted process rebuilds
the chain from the directory.
"""

from __future__ import annotations

import os
import pickle
from typing import List, Optional, Union

from ..checkpoint import Checkpoint
from ..errors import StorageError
from ..sim.storage import StableStore
from ..snapshot import Codec
from ..types import ProcessId

_SUFFIX = ".ckpt"


class FileStableStore(StableStore):
    """Durable checkpoint store over a directory of pickle files.

    ``write_latency`` defaults to zero: the live backend pays the
    *actual* fsync cost instead of a modelled one (the TB blocking
    formula's floor is then the real write time, as it should be).
    """

    def __init__(self, root: str, history: int = 2,
                 codec: Union[str, Codec, None] = None,
                 write_latency: float = 0.0) -> None:
        super().__init__(history=history, write_latency=write_latency,
                         codec=codec)
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._recover_chains()

    # ------------------------------------------------------------------
    # StableStore overrides: mirror every chain mutation onto disk
    # ------------------------------------------------------------------
    def save(self, checkpoint: Checkpoint) -> None:
        super().save(checkpoint)
        self._persist(checkpoint)
        self._prune_files(checkpoint.process_id)

    def discard_after_epoch(self, process_id: ProcessId, epoch: int) -> int:
        discarded = super().discard_after_epoch(process_id, epoch)
        if discarded:
            self._prune_files(process_id)
        return discarded

    # ------------------------------------------------------------------
    def _filename(self, checkpoint: Checkpoint) -> str:
        epoch = -1 if checkpoint.epoch is None else checkpoint.epoch
        return f"{checkpoint.process_id}__{epoch:08d}{_SUFFIX}"

    def _persist(self, checkpoint: Checkpoint) -> None:
        final = os.path.join(self.root, self._filename(checkpoint))
        tmp = final + ".tmp"
        data = pickle.dumps(checkpoint)
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.rename(tmp, final)
        self._sync_dir()

    def _sync_dir(self) -> None:
        fd = os.open(self.root, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _prune_files(self, process_id: ProcessId) -> None:
        """Delete files for checkpoints the in-memory chain no longer
        retains (history trim or post-recovery discard)."""
        keep = {self._filename(ckpt) for ckpt in self.history(process_id)}
        prefix = f"{process_id}__"
        removed = False
        for name in os.listdir(self.root):
            if (name.startswith(prefix) and name.endswith(_SUFFIX)
                    and name not in keep):
                os.unlink(os.path.join(self.root, name))
                removed = True
        if removed:
            self._sync_dir()

    def _recover_chains(self) -> None:
        """Rebuild per-process chains from the directory (restart path).

        Files are replayed in epoch order through the parent ``save``
        (re-applying history trimming); leftover temporaries from an
        interrupted write are discarded — their rename never happened,
        so they were never durable.
        """
        entries = []
        for name in sorted(os.listdir(self.root)):
            path = os.path.join(self.root, name)
            if name.endswith(".tmp"):
                os.unlink(path)
                continue
            if not name.endswith(_SUFFIX):
                continue
            try:
                with open(path, "rb") as handle:
                    checkpoint = pickle.load(handle)
            except (OSError, pickle.UnpicklingError, EOFError) as exc:
                raise StorageError(f"unreadable stable checkpoint {path}: {exc}")
            entries.append(checkpoint)
        entries.sort(key=lambda c: (str(c.process_id),
                                    -1 if c.epoch is None else c.epoch))
        for checkpoint in entries:
            StableStore.save(self, checkpoint)

    # ------------------------------------------------------------------
    def files(self, process_id: Optional[ProcessId] = None) -> List[str]:
        """Checkpoint file names currently on disk (diagnostics)."""
        prefix = f"{process_id}__" if process_id is not None else ""
        return sorted(name for name in os.listdir(self.root)
                      if name.startswith(prefix) and name.endswith(_SUFFIX))
