"""Single-threaded wall-clock scheduler — the live
:class:`~repro.runtime.ports.SchedulerPort`.

The protocol layer schedules callbacks against true time; on the live
backend true time is the wall clock, and the event loop (the agent's
``select`` loop) interleaves due callbacks with socket and control-pipe
I/O.  The surface mirrors :class:`~repro.sim.kernel.Simulator` where the
protocol layer touches it (``now``, ``schedule_at``, ``schedule_after``,
``schedule_many``, cancellable events) with one semantic difference: a
deadline already in the past fires on the next loop turn instead of
raising — wall time, unlike simulated time, moves between the decision
to schedule and the call.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..runtime import EventPriority


class LiveEvent:
    """A scheduled callback; cancellation is a tombstone the dispatch
    loop skips (same contract as the sim kernel's events)."""

    __slots__ = ("time", "priority", "seq", "callback", "args", "label",
                 "cancelled")

    def __init__(self, time: float, priority: int, seq: int,
                 callback: Callable[..., Any], args: tuple, label: str) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.label = label
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "LiveEvent") -> bool:
        return ((self.time, self.priority, self.seq)
                < (other.time, other.priority, other.seq))

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        state = " cancelled" if self.cancelled else ""
        return f"<LiveEvent t={self.time:.3f} {self.label!r}{state}>"


class LiveScheduler:
    """Heap of wall-clock deadlines, drained by the owning loop."""

    def __init__(self, clock) -> None:
        self._clock = clock
        self._heap: List[LiveEvent] = []
        self._seq = itertools.count()
        self.fired = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._clock.now()

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    args: tuple = (), priority: EventPriority = EventPriority.ACTION,
                    label: str = "") -> LiveEvent:
        event = LiveEvent(max(time, self.now), int(priority), next(self._seq),
                          callback, args, label)
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(self, delay: float, callback: Callable[..., Any],
                       args: tuple = (), priority: EventPriority = EventPriority.ACTION,
                       label: str = "") -> LiveEvent:
        return self.schedule_at(self.now + max(delay, 0.0), callback,
                                args=args, priority=priority, label=label)

    def schedule_many(self, specs: Sequence[Tuple]) -> List[LiveEvent]:
        return [self.schedule_at(time, callback, args=args,
                                 priority=priority, label=label)
                for time, callback, args, priority, label in specs]

    # ------------------------------------------------------------------
    def run_due(self, limit: int = 10_000) -> Optional[float]:
        """Fire every event due at the current wall time, in (time,
        priority, seq) order; returns seconds until the next pending
        event (``None`` when the heap is empty) so the I/O loop can size
        its select timeout.  ``limit`` bounds one drain against
        callbacks that keep scheduling due work.
        """
        fired = 0
        while self._heap and fired < limit:
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if event.time > self.now:
                break
            heapq.heappop(self._heap)
            fired += 1
            self.fired += 1
            event.callback(*event.args)
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return max(0.0, self._heap[0].time - self.now)

    def pending_within(self, horizon: float,
                       exclude_prefix: str = "_infra") -> List[LiveEvent]:
        """Non-cancelled events due within ``horizon`` seconds, minus
        infrastructure events — the quiesce probe: a process is idle
        when nothing protocol-originated is about to fire.  (Parked
        periodic timers and workload actions sit far outside any
        reasonable horizon; heartbeat/retry events carry the
        infrastructure label prefix.)"""
        cutoff = self.now + horizon
        return [event for event in self._heap
                if not event.cancelled and event.time <= cutoff
                and not event.label.startswith(exclude_prefix)]
