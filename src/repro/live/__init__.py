"""Real-process backend for the protocol runtime.

``repro.live`` implements the :mod:`repro.runtime` ports from operating
system primitives — wall clocks, TCP sockets, files, processes — so the
paper's coordination protocols run under actual concurrency:

* :mod:`~repro.live.clock` — wall-clock :class:`ClockSource`;
* :mod:`~repro.live.loop` — single-threaded scheduler + I/O loop;
* :mod:`~repro.live.storage` — fsync'd file-backed :class:`StablePort`;
* :mod:`~repro.live.node` — per-process :class:`CrashPort` facade;
* :mod:`~repro.live.transport` — framed, checksummed, ack'd-with-retry
  TCP :class:`TransportPort`;
* :mod:`~repro.live.failover` — heartbeat-driven shadow takeover;
* :mod:`~repro.live.agent` — one protocol process per OS process;
* :mod:`~repro.live.harness` — topology launcher, ``kill -9``
  injection, scripted runs, decision-trace collection.

The protocol layer (``host``, ``mdcd``, ``tb``) runs **unmodified** on
these adapters — that is the point: the same code verified against the
discrete-event oracle serves real traffic.
"""

from .clock import WallClock
from .loop import LiveScheduler
from .node import LiveNode
from .storage import FileStableStore
from .transport import LiveTransport

__all__ = [
    "FileStableStore",
    "LiveNode",
    "LiveScheduler",
    "LiveTransport",
    "WallClock",
]
