"""TCP transport — the live :class:`~repro.runtime.ports.TransportPort`.

One agent process owns one listening socket (inbound) and one outbound
connection per peer.  All frames ride the wire format of
:mod:`repro.runtime.wire` (length prefix, canonical JSON, per-frame
sha256).  Reliability is layered exactly like the simulated network the
protocols were verified against:

* **Transport receipts** (this module): every ``msg``/``ack``/``ctl``
  frame carries a ``(session, seq)`` tag; the receiver returns a
  receipt and deduplicates retransmissions.  Unreceipted frames are
  retransmitted with exponential backoff, forever — messages to a dead
  peer stay pending, like the sim's never-acknowledged drops, until the
  recovery layer clears them.
* **Protocol acknowledgements** (the paper's): a delivered application
  message is protocol-acked only when the endpoint *reads* it — the
  ``deliver``-returns-``False``-suppresses-ack contract of
  :class:`~repro.sim.network.Network`, reproduced verbatim so deferred
  acks and TB buffering behave identically.

The transport is single-threaded: inbound sockets are driven by the
agent's selector loop, outbound writes are short blocking sends (small
frames, localhost), and retransmit timers live on the shared scheduler
under the ``_infra`` label so the quiesce probe ignores them.
"""

from __future__ import annotations

import selectors
import socket
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..messages.message import DEVICE, Message
from ..runtime import Endpoint, EventPriority, FrameReader, WireIntegrityError
from ..runtime.wire import encode_frame, message_from_dict, message_to_dict
from ..types import MessageKind, ProcessId

#: Retransmission backoff: first retry, growth factor, ceiling.
RETRY_BASE = 0.05
RETRY_FACTOR = 2.0
RETRY_CAP = 1.0

#: Outbound connect/send bounds (localhost: failures are fast, stalls
#: mean a wedged peer and are cut short; the retry path re-delivers).
CONNECT_TIMEOUT = 0.3
SEND_TIMEOUT = 1.0


class _PeerLink:
    """Outbound (write-only) connection to one peer."""

    def __init__(self, peer: str, address: Tuple[str, int]) -> None:
        self.peer = peer
        self.address = address
        self.sock: Optional[socket.socket] = None
        self.retry_after = 0.0
        self.dropped = False

    def close(self) -> None:
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass
            self.sock = None


class _Tracked:
    """An unreceipted outbound frame awaiting its receipt."""

    __slots__ = ("peer", "data", "attempts", "event", "kind")

    def __init__(self, peer: str, data: bytes, kind: str) -> None:
        self.peer = peer
        self.data = data
        self.kind = kind
        self.attempts = 0
        self.event = None


class LiveTransport:
    """Reliable framed messaging between agent processes."""

    def __init__(self, process_id: ProcessId, scheduler, selector:
                 selectors.BaseSelector, listen_sock: socket.socket,
                 peers: Dict[str, Tuple[str, int]], session: str) -> None:
        self.process_id = process_id
        self.scheduler = scheduler
        self.selector = selector
        self.session = session
        self._listen = listen_sock
        self._links = {peer: _PeerLink(peer, tuple(address))
                       for peer, address in peers.items()}
        self._endpoints: Dict[ProcessId, Endpoint] = {}
        self._seq = 0
        self._unreceipted: Dict[int, _Tracked] = {}
        self._seen: set = set()
        self._held: bool = True
        self._held_frames: List[dict] = []
        #: Wall time a frame (any frame) last arrived from each peer —
        #: the failure detector's evidence.
        self.last_heard: Dict[str, float] = {}
        #: Messages delivered to the DEVICE pseudo-endpoint, in order.
        self.device_log: List[Message] = []
        #: Invoked with control frames (``ctl`` payloads, e.g. takeover).
        self.on_control: Optional[Callable[[dict], None]] = None
        self.counters: Dict[str, int] = {
            "sent": 0, "delivered": 0, "duplicates": 0, "retransmits": 0,
            "receipts": 0, "integrity_errors": 0, "heartbeats": 0,
        }
        listen_sock.setblocking(False)
        selector.register(listen_sock, selectors.EVENT_READ, self._accept)

    # ------------------------------------------------------------------
    # TransportPort surface (what FtProcess talks to)
    # ------------------------------------------------------------------
    def register(self, endpoint: Endpoint) -> None:
        self._endpoints[endpoint.process_id] = endpoint

    def send(self, message: Message) -> None:
        message.send_time = self.scheduler.now
        if message.born_at == 0.0:
            message.born_at = self.scheduler.now
        self.counters["sent"] += 1
        if message.receiver == DEVICE:
            self.device_log.append(message)
            return
        self._send_tracked(str(message.receiver),
                           {"t": "msg", "m": message_to_dict(message)})

    def ack(self, message: Message) -> None:
        """Protocol-acknowledge ``message`` back to its sender."""
        self._send_tracked(str(message.sender),
                           {"t": "ack", "to": str(message.sender),
                            "msg_id": message.msg_id})

    def in_flight(self) -> List[Message]:
        """Messages whose frames are still unreceipted."""
        out = []
        for tracked in self._unreceipted.values():
            if tracked.kind == "msg":
                out.append(tracked)
        return out

    # ------------------------------------------------------------------
    # agent-facing controls
    # ------------------------------------------------------------------
    def unreceipted_count(self) -> int:
        return len(self._unreceipted)

    def release_held(self) -> None:
        """Leave held mode: dispatch buffered frames in arrival order.

        A (re)starting agent receipts inbound frames but does not act on
        them until its process state is ready (post-recovery); stale
        incarnations are then fenced by the protocol layer exactly as
        the sim drops pre-crash in-flight deliveries.
        """
        self._held = False
        frames, self._held_frames = self._held_frames, []
        for frame in frames:
            self._dispatch(frame)

    def drop_peer(self, peer: str) -> None:
        """Stop talking to a deposed/dead peer: close the link, discard
        its unreceipted frames (recovery re-sends under the new
        incarnation through live peers)."""
        link = self._links.get(peer)
        if link is not None:
            link.dropped = True
            link.close()
        stale = [seq for seq, tracked in self._unreceipted.items()
                 if tracked.peer == peer]
        for seq in stale:
            tracked = self._unreceipted.pop(seq)
            if tracked.event is not None:
                tracked.event.cancel()

    def send_heartbeat(self) -> None:
        """Broadcast an (untracked) heartbeat to every live peer."""
        self.counters["heartbeats"] += 1
        frame = {"t": "hb", "from": str(self.process_id)}
        data = encode_frame(frame)
        for link in self._links.values():
            if not link.dropped:
                self._write(link, data, best_effort=True)

    def send_control(self, peer: str, payload: dict) -> None:
        """Send a reliable control frame (e.g. the takeover broadcast)."""
        self._send_tracked(peer, {"t": "ctl", "ctl": payload})

    def close(self) -> None:
        for tracked in self._unreceipted.values():
            if tracked.event is not None:
                tracked.event.cancel()
        self._unreceipted.clear()
        for link in self._links.values():
            link.close()
        try:
            self.selector.unregister(self._listen)
        except (KeyError, ValueError):
            pass
        self._listen.close()

    # ------------------------------------------------------------------
    # outbound path
    # ------------------------------------------------------------------
    def _send_tracked(self, peer: str, frame: dict) -> None:
        link = self._links.get(peer)
        if link is None or link.dropped:
            return
        self._seq += 1
        frame = dict(frame)
        frame["from"] = str(self.process_id)
        frame["session"] = self.session
        frame["seq"] = self._seq
        tracked = _Tracked(peer, encode_frame(frame), frame["t"])
        self._unreceipted[self._seq] = tracked
        self._write(link, tracked.data)
        self._arm_retry(self._seq, tracked)

    def _arm_retry(self, seq: int, tracked: _Tracked) -> None:
        delay = min(RETRY_BASE * (RETRY_FACTOR ** tracked.attempts), RETRY_CAP)
        tracked.event = self.scheduler.schedule_after(
            delay, self._retransmit, args=(seq,),
            priority=EventPriority.DELIVERY, label="_infra:retx")

    def _retransmit(self, seq: int) -> None:
        tracked = self._unreceipted.get(seq)
        if tracked is None:
            return
        link = self._links.get(tracked.peer)
        if link is None or link.dropped:
            del self._unreceipted[seq]
            return
        tracked.attempts += 1
        self.counters["retransmits"] += 1
        self._write(link, tracked.data)
        self._arm_retry(seq, tracked)

    def _write(self, link: _PeerLink, data: bytes,
               best_effort: bool = False) -> bool:
        if link.dropped:
            return False
        if link.sock is None:
            if self.scheduler.now < link.retry_after:
                return False
            try:
                link.sock = socket.create_connection(
                    link.address, timeout=CONNECT_TIMEOUT)
                link.sock.settimeout(SEND_TIMEOUT)
                link.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                link.sock = None
                link.retry_after = self.scheduler.now + 0.05
                return False
        try:
            link.sock.sendall(data)
            return True
        except OSError:
            link.close()
            link.retry_after = self.scheduler.now + 0.05
            return False

    # ------------------------------------------------------------------
    # inbound path
    # ------------------------------------------------------------------
    def _accept(self) -> None:
        try:
            conn, _addr = self._listen.accept()
        except OSError:
            return
        conn.setblocking(False)
        reader = FrameReader()
        self.selector.register(conn, selectors.EVENT_READ,
                               lambda c=conn, r=reader: self._readable(c, r))

    def _readable(self, conn: socket.socket, reader: FrameReader) -> None:
        try:
            chunk = conn.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            chunk = b""
        if not chunk:
            self._close_conn(conn)
            return
        try:
            frames = reader.feed(chunk)
        except WireIntegrityError:
            # Corrupt stream: drop the connection; the sender's receipt
            # timeouts retransmit everything that mattered.
            self.counters["integrity_errors"] += 1
            self._close_conn(conn)
            return
        for frame in frames:
            self._on_frame(frame)

    def _close_conn(self, conn: socket.socket) -> None:
        try:
            self.selector.unregister(conn)
        except (KeyError, ValueError):
            pass
        try:
            conn.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    def _on_frame(self, frame: Any) -> None:
        if not isinstance(frame, dict):
            self.counters["integrity_errors"] += 1
            return
        kind = frame.get("t")
        sender = frame.get("from", "")
        self.last_heard[sender] = self.scheduler.now
        if kind == "hb":
            return
        if kind == "receipt":
            self._on_receipt(frame)
            return
        if kind in ("msg", "ack", "ctl"):
            self._receipt(frame)
            key = (sender, frame.get("session"), frame.get("seq"))
            if key in self._seen:
                self.counters["duplicates"] += 1
                return
            self._seen.add(key)
            if self._held:
                self._held_frames.append(frame)
                return
            self._dispatch(frame)
            return
        self.counters["integrity_errors"] += 1

    def _receipt(self, frame: dict) -> None:
        link = self._links.get(frame.get("from", ""))
        if link is None:
            return
        receipt = encode_frame({"t": "receipt", "from": str(self.process_id),
                                "session": frame.get("session"),
                                "seq": frame.get("seq")})
        self._write(link, receipt, best_effort=True)

    def _on_receipt(self, frame: dict) -> None:
        if frame.get("session") != self.session:
            return
        tracked = self._unreceipted.pop(frame.get("seq"), None)
        if tracked is None:
            return
        self.counters["receipts"] += 1
        if tracked.event is not None:
            tracked.event.cancel()

    def _dispatch(self, frame: dict) -> None:
        kind = frame["t"]
        if kind == "msg":
            try:
                message = message_from_dict(frame["m"])
            except (WireIntegrityError, KeyError):
                self.counters["integrity_errors"] += 1
                return
            endpoint = self._endpoints.get(message.receiver)
            if endpoint is None or not endpoint.is_alive():
                return
            self.counters["delivered"] += 1
            accepted = endpoint.deliver(message)
            # Verbatim Network auto-ack contract: a read delivery is
            # protocol-acked; False means buffered/rejected — the
            # receiver acks explicitly once it actually reads it.
            if accepted is not False and message.kind != MessageKind.ACK:
                self.ack(message)
            return
        if kind == "ack":
            endpoint = self._endpoints.get(ProcessId(frame.get("to", "")))
            if (endpoint is not None and endpoint.is_alive()
                    and endpoint.on_ack is not None):
                endpoint.on_ack(frame.get("msg_id"))
            return
        if kind == "ctl" and self.on_control is not None:
            self.on_control(frame.get("ctl") or {})
