"""The live :class:`~repro.runtime.ports.CrashPort`: a facade over the
real host.

On the live backend a "node" *is* the OS process: a crash is ``kill
-9`` (nothing runs afterwards — the volatile store and timers vanish
with the address space, no erasure needed), and a restart is a fresh
process rebuilding from the file-backed stable store.  The facade
exists so the protocol layer finds the same attribute surface it has on
:class:`~repro.sim.node.Node` — scheduler, clock, timers, stores,
liveness — plus the soft-crash hooks the takeover path uses to mark a
*remote* node down locally (the failure detector's verdict).
"""

from __future__ import annotations

from typing import Callable, List, Union

from ..runtime import TimerService, VolatileStore
from ..types import NodeId
from .clock import WallClock
from .loop import LiveScheduler
from .storage import FileStableStore


class LiveNode:
    """Per-OS-process node facade."""

    def __init__(self, node_id: Union[NodeId, str], scheduler: LiveScheduler,
                 clock: WallClock, stable: FileStableStore,
                 volatile_codec=None) -> None:
        self.node_id = node_id
        self.sim = scheduler
        self.clock = clock
        self.timers = TimerService(scheduler, clock)
        self.volatile = VolatileStore(codec=volatile_codec)
        self.stable = stable
        self.crashed = False
        self.crash_count: int = 0
        self._crash_listeners: List[Callable[["LiveNode"], None]] = []
        self._restart_listeners: List[Callable[["LiveNode"], None]] = []

    # ------------------------------------------------------------------
    def on_crash(self, listener: Callable[["LiveNode"], None]) -> None:
        self._crash_listeners.append(listener)

    def on_restart(self, listener: Callable[["LiveNode"], None]) -> None:
        self._restart_listeners.append(listener)

    # ------------------------------------------------------------------
    def mark_down(self) -> None:
        """Record that this node's process is (being) terminated.

        Used for orderly in-process shutdown paths; a real ``kill -9``
        never reaches here — the next incarnation of the process starts
        from :class:`FileStableStore` instead.
        """
        if self.crashed:
            return
        self.crashed = True
        self.crash_count += 1
        self.volatile.erase()
        self.timers.cancel_all()
        for listener in list(self._crash_listeners):
            listener(self)
