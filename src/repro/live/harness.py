"""Multi-process orchestration for the live backend.

The harness launches one :mod:`repro.live.agent` OS process per
protocol role (``P1_act``/``P1_sdw``/``P2``), wires them to each other
over localhost TCP, and drives them through their stdin/stdout control
channels.  It plays two parts:

* **Oracle runs** (:meth:`LiveHarness.run_script`): execute a
  :class:`~repro.runtime.script.WorkloadScript` under the same
  barrier discipline as :class:`~repro.runtime.sim_backend.SimBackend`
  — apply an op, quiesce the whole system, repeat — including real
  ``kill -9`` crash injection and the coordinated hardware recovery
  (the harness orchestrates across agents the exact phases
  :class:`~repro.tb.hardware_recovery.HardwareRecoveryCoordinator`
  runs in one address space).  Returns per-process decision traces in
  the shape :func:`~repro.runtime.decisions.decisions_from_trace`
  produces, so the two backends diff directly.
* **Failure demos** (:meth:`LiveHarness.run_demo`): heartbeats on,
  short real TB intervals, scripted ``kill -9`` of the *active*;
  asserts the shadow takes over on its own failure detector, then
  kills and recovers the peer from its file-backed stable storage.
"""

from __future__ import annotations

import json
import os
import select
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional

from ..errors import ReproError
from ..types import Role

#: Role application/recovery order — matches SimBackend._apply.
ROLE_ORDER = (Role.ACTIVE_1, Role.SHADOW_1, Role.PEER_2)

#: The scheme's node names (scripts name nodes, agents are per-role).
NODE_ROLES = {"N1a": Role.ACTIVE_1, "N1b": Role.SHADOW_1, "N2": Role.PEER_2}


class HarnessError(ReproError):
    """A live agent failed to start, respond, or quiesce in time."""


def _free_port() -> int:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]
    finally:
        sock.close()


class AgentHandle:
    """One spawned agent process and its control channel."""

    def __init__(self, role: Role, spec: Dict[str, Any], log_path: str) -> None:
        self.role = role
        self.spec = spec
        self.log = open(log_path, "ab")
        src_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.live.agent", json.dumps(spec)],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE, stderr=self.log,
            env=env)
        self._buffer = b""

    # ------------------------------------------------------------------
    def _read_line(self, timeout: float) -> Dict[str, Any]:
        fd = self.proc.stdout.fileno()
        deadline = time.monotonic() + timeout
        while b"\n" not in self._buffer:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise HarnessError(
                    f"{self.role.value}: no response within {timeout:.1f}s")
            ready, _, _ = select.select([fd], [], [], remaining)
            if not ready:
                continue
            chunk = os.read(fd, 65536)
            if not chunk:
                raise HarnessError(
                    f"{self.role.value}: agent exited unexpectedly "
                    f"(code {self.proc.poll()})")
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return json.loads(line.decode("utf-8"))

    def wait_ready(self, timeout: float = 15.0) -> Dict[str, Any]:
        ready = self._read_line(timeout)
        if ready.get("event") != "ready":
            raise HarnessError(f"{self.role.value}: unexpected boot line {ready}")
        return ready

    def request(self, command: Dict[str, Any],
                timeout: float = 15.0) -> Dict[str, Any]:
        data = json.dumps(command) + "\n"
        try:
            self.proc.stdin.write(data.encode("utf-8"))
            self.proc.stdin.flush()
        except (BrokenPipeError, OSError) as exc:
            raise HarnessError(f"{self.role.value}: control channel closed "
                               f"({exc})") from exc
        response = self._read_line(timeout)
        if not response.get("ok", False):
            raise HarnessError(
                f"{self.role.value}: {command.get('cmd')} failed: "
                f"{response.get('error')}")
        return response

    # ------------------------------------------------------------------
    def kill9(self) -> int:
        """The fault model: SIGKILL, no cleanup, no goodbye."""
        self.proc.send_signal(signal.SIGKILL)
        code = self.proc.wait()
        self._close_pipes()
        return code

    def shutdown(self, timeout: float = 10.0) -> None:
        try:
            self.request({"cmd": "shutdown"}, timeout=timeout)
            self.proc.wait(timeout=timeout)
        except (HarnessError, subprocess.TimeoutExpired):
            self.proc.kill()
            self.proc.wait()
        self._close_pipes()

    def reap(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()
        self._close_pipes()

    def _close_pipes(self) -> None:
        for pipe in (self.proc.stdin, self.proc.stdout):
            try:
                pipe.close()
            except (OSError, ValueError):
                pass
        try:
            self.log.close()
        except OSError:
            pass


class LiveHarness:
    """Launch, drive, crash, and recover a live P1_act/P1_sdw/P2 system."""

    name = "live"

    def __init__(self, seed: int = 0, tb_interval: float = 10_000.0,
                 workdir: Optional[str] = None,
                 heartbeat: Optional[Dict[str, float]] = None,
                 deadline: float = 120.0, horizon: float = 1_000.0,
                 quiesce_horizon: float = 2.0) -> None:
        self.seed = seed
        self.tb_interval = tb_interval
        self.heartbeat = heartbeat
        self.deadline = deadline
        self.horizon = horizon
        self.quiesce_horizon = quiesce_horizon
        self.workdir = workdir or tempfile.mkdtemp(prefix="repro-live-")
        self._owns_workdir = workdir is None
        os.makedirs(self.workdir, exist_ok=True)
        #: One shared CLOCK_MONOTONIC origin: agents (including
        #: restarted ones) agree on local time the way the sim's
        #: roughly-synchronized clocks do.
        self.clock_origin = time.monotonic()
        self.ports = {role: _free_port() for role in ROLE_ORDER}
        self.agents: Dict[Role, AgentHandle] = {}
        self.deposed: List[str] = []
        self._deadline_at = 0.0

    # ------------------------------------------------------------------
    # specs and lifecycle
    # ------------------------------------------------------------------
    def _trace_path(self, role: Role) -> str:
        return os.path.join(self.workdir, f"decisions_{role.value}.jsonl")

    def _spec(self, role: Role, incarnation: int = 0) -> Dict[str, Any]:
        heartbeat = None
        if self.heartbeat is not None:
            heartbeat = dict(self.heartbeat)
            if role is Role.SHADOW_1:
                heartbeat.setdefault("watch", Role.ACTIVE_1.value)
        return {
            "role": role.value,
            "seed": self.seed,
            "host": "127.0.0.1",
            "port": self.ports[role],
            "peers": {other.value: ["127.0.0.1", self.ports[other]]
                      for other in ROLE_ORDER if other is not role},
            "data_dir": os.path.join(self.workdir, f"stable_{role.value}"),
            "trace_path": self._trace_path(role),
            "tb_interval": self.tb_interval,
            "horizon": self.horizon,
            "clock_origin": self.clock_origin,
            "heartbeat": heartbeat,
            "incarnation": incarnation,
            "deposed": list(self.deposed),
        }

    def _spawn(self, role: Role, incarnation: int = 0) -> AgentHandle:
        agent = AgentHandle(role, self._spec(role, incarnation),
                            os.path.join(self.workdir,
                                         f"agent_{role.value}.log"))
        agent.wait_ready(timeout=self._budget(15.0))
        self.agents[role] = agent
        return agent

    def _budget(self, cap: float) -> float:
        remaining = self._deadline_at - time.monotonic()
        if remaining <= 0:
            raise HarnessError("harness deadline exceeded")
        return min(cap, remaining)

    def _in_service(self) -> List[AgentHandle]:
        return [self.agents[role] for role in ROLE_ORDER
                if role in self.agents]

    # ------------------------------------------------------------------
    # barriers
    # ------------------------------------------------------------------
    def quiesce_all(self, horizon: Optional[float] = None) -> None:
        """Block until every in-service agent is idle twice in a row
        (no unreceipted frames, no due protocol events)."""
        horizon = self.quiesce_horizon if horizon is None else horizon
        consecutive = 0
        while consecutive < 2:
            self._budget(1.0)
            idle = all(
                agent.request({"cmd": "quiesce", "horizon": horizon},
                              timeout=self._budget(15.0))["idle"]
                for agent in self._in_service())
            consecutive = consecutive + 1 if idle else 0
            time.sleep(0.02)

    # ------------------------------------------------------------------
    # scripted oracle runs
    # ------------------------------------------------------------------
    def run_script(self, script) -> Dict[str, List[Dict[str, Any]]]:
        """Execute ``script`` on real processes; return decision traces."""
        self._deadline_at = time.monotonic() + self.deadline
        try:
            for role in ROLE_ORDER:
                self._spawn(role)
            for agent in self._in_service():
                agent.request({"cmd": "start", "release": True},
                              timeout=self._budget(15.0))
            self.quiesce_all()
            for sequence, op in script.numbered():
                self._apply(op, sequence)
                self.quiesce_all()
            for agent in self._in_service():
                agent.shutdown(timeout=self._budget(10.0))
            return self.collect_decisions()
        finally:
            self._reap_all()

    def _apply(self, op, sequence: int) -> None:
        if op.op == "settle":
            return
        if op.op == "tb-round":
            for agent in self._in_service():
                agent.request({"cmd": "tb-round"}, timeout=self._budget(15.0))
            return
        if op.op == "crash":
            role = NODE_ROLES[op.target]
            agent = self.agents.pop(role)
            agent.kill9()
            return
        if op.op == "restart":
            self.recover_node(NODE_ROLES[op.target])
            return
        for role in op.roles():
            if role in self.agents:
                self.agents[role].request(
                    {"cmd": "op", "op": op.op, "index": sequence,
                     "stimulus": op.stimulus}, timeout=self._budget(15.0))

    # ------------------------------------------------------------------
    # coordinated hardware recovery (HardwareRecoveryCoordinator's
    # phases, orchestrated across address spaces)
    # ------------------------------------------------------------------
    def recover_node(self, role: Role) -> Dict[str, Any]:
        # The restarted agent comes up *held*: it receipts traffic but
        # dispatches nothing until recovery has restored its state and
        # fenced the old incarnation.
        current = max((agent.request({"cmd": "status"},
                                     timeout=self._budget(15.0))["incarnation"]
                       for agent in self._in_service()), default=0)
        restarted = self._spawn(role, incarnation=current)
        restarted.request({"cmd": "start", "release": False},
                          timeout=self._budget(15.0))
        latest = [agent.request({"cmd": "hw-latest"},
                                timeout=self._budget(15.0))
                  for agent in self._in_service()]
        epochs = [entry["epoch"] for entry in latest]
        if any(epoch is None for epoch in epochs):
            raise HarnessError("a process has no stable checkpoint (no genesis?)")
        line = min(epochs)
        boundaries = [entry["boundary"] for entry in latest
                      if entry["boundary"] is not None]
        boundary = max(boundaries) if boundaries else None
        incarnation = current + 1
        for agent in self._in_service():
            agent.request({"cmd": "hw-recover", "line": line,
                           "boundary": boundary, "incarnation": incarnation},
                          timeout=self._budget(15.0))
        for agent in self._in_service():
            agent.request({"cmd": "hw-resend", "deposed": list(self.deposed)},
                          timeout=self._budget(15.0))
        restarted.request({"cmd": "release"}, timeout=self._budget(15.0))
        return {"line": line, "boundary": boundary, "incarnation": incarnation}

    # ------------------------------------------------------------------
    # artifacts
    # ------------------------------------------------------------------
    def collect_decisions(self) -> Dict[str, List[Dict[str, Any]]]:
        """Read back the per-process decision JSONL artifacts (same
        shape as ``decisions_from_trace``: only processes that decided
        something appear)."""
        decisions: Dict[str, List[Dict[str, Any]]] = {}
        for role in ROLE_ORDER:
            path = self._trace_path(role)
            if not os.path.exists(path):
                continue
            with open(path, "r", encoding="utf-8") as handle:
                records = [json.loads(line) for line in handle
                           if line.strip()]
            if records:
                decisions[role.value] = records
        return decisions

    def cleanup(self) -> None:
        """Remove the working directory (only if the harness made it)."""
        if self._owns_workdir:
            shutil.rmtree(self.workdir, ignore_errors=True)

    def _reap_all(self) -> None:
        for agent in self.agents.values():
            agent.reap()
        self.agents.clear()

    # ------------------------------------------------------------------
    # live failure demo
    # ------------------------------------------------------------------
    def run_demo(self) -> Dict[str, Any]:
        """Heartbeat failover end to end, on real processes.

        ``kill -9`` the active mid-run; the shadow's own failure
        detector must promote it (no harness involvement).  Then
        ``kill -9`` the peer and run the coordinated hardware recovery
        from file-backed stable storage.  Returns a summary dict; the
        decision artifacts stay in ``workdir``.
        """
        if self.heartbeat is None:
            self.heartbeat = {"interval": 0.15, "timeout": 0.75}
        self._deadline_at = time.monotonic() + self.deadline
        summary: Dict[str, Any] = {"seed": self.seed,
                                   "tb_interval": self.tb_interval,
                                   "workdir": self.workdir}
        try:
            for role in ROLE_ORDER:
                self._spawn(role)
            for agent in self._in_service():
                agent.request({"cmd": "start", "release": True},
                              timeout=self._budget(15.0))
            self._demo_op("internal", 0, 41)
            self._demo_op("external", 1, 42)
            # Let at least two periodic TB boundaries pass for real.
            time.sleep(2.2 * self.tb_interval)
            self.quiesce_all(horizon=0.0)

            active = self.agents.pop(Role.ACTIVE_1)
            summary["active_killed"] = active.kill9() == -signal.SIGKILL
            self.deposed = [Role.ACTIVE_1.value]
            summary["takeover"] = self._await_takeover(Role.SHADOW_1)
            summary["peer_adopted"] = self._await_takeover(Role.PEER_2)

            self._demo_op("internal", 2, 43)
            self._demo_op("external", 3, 44)
            self.quiesce_all(horizon=0.0)

            peer = self.agents.pop(Role.PEER_2)
            summary["peer_killed"] = peer.kill9() == -signal.SIGKILL
            time.sleep(0.2)
            summary["hardware_recovery"] = self.recover_node(Role.PEER_2)
            self._demo_op("internal", 4, 45)
            self.quiesce_all(horizon=0.0)

            for agent in self._in_service():
                agent.shutdown(timeout=self._budget(10.0))
            decisions = self.collect_decisions()
            summary["decisions"] = {pid: len(seq)
                                    for pid, seq in decisions.items()}
            shadow = decisions.get(Role.SHADOW_1.value, [])
            peer_seq = decisions.get(Role.PEER_2.value, [])
            summary["shadow_recovered"] = any(
                entry["event"].startswith("recovery.") for entry in shadow)
            summary["peer_rolled_back"] = any(
                entry["event"] == "recovery.rollback.hardware"
                for entry in peer_seq)
            summary["ok"] = bool(
                summary["active_killed"] and summary["takeover"]
                and summary["peer_killed"] and summary["shadow_recovered"]
                and summary["peer_rolled_back"])
            with open(os.path.join(self.workdir, "demo_summary.json"), "w",
                      encoding="utf-8") as handle:
                json.dump(summary, handle, indent=2, sort_keys=True)
            return summary
        finally:
            self._reap_all()

    def _demo_op(self, op: str, sequence: int, stimulus: int) -> None:
        """Apply a component-1 op to whichever replica is in service."""
        for role in (Role.ACTIVE_1, Role.SHADOW_1):
            if role in self.agents:
                self.agents[role].request(
                    {"cmd": "op", "op": op, "index": sequence,
                     "stimulus": stimulus}, timeout=self._budget(15.0))
        self.quiesce_all(horizon=0.0)

    def _await_takeover(self, role: Role) -> Optional[Dict[str, Any]]:
        """Poll ``role``'s status until its takeover summary appears."""
        while True:
            self._budget(1.0)
            status = self.agents[role].request({"cmd": "status"},
                                               timeout=self._budget(15.0))
            if status.get("takeover"):
                return status["takeover"]
            time.sleep(0.1)
