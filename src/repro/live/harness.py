"""Multi-process orchestration for the live backend.

The harness launches one :mod:`repro.live.agent` OS process per
topology member (three for ``Topology.paper()``, one per active,
shadow and peer generally), wires them to each other over localhost
TCP, and drives them through their stdin/stdout control channels.  It
plays two parts:

* **Oracle runs** (:meth:`LiveHarness.run_script`): execute a
  :class:`~repro.runtime.script.WorkloadScript` under the same
  barrier discipline as :class:`~repro.runtime.sim_backend.SimBackend`
  — apply an op, quiesce the whole system, repeat — including real
  ``kill -9`` crash injection and the coordinated hardware recovery
  (the harness orchestrates across agents the exact phases
  :class:`~repro.tb.hardware_recovery.HardwareRecoveryCoordinator`
  runs in one address space).  Returns per-process decision traces in
  the shape :func:`~repro.runtime.decisions.decisions_from_trace`
  produces, so the two backends diff directly.
* **Failure demos** (:meth:`LiveHarness.run_demo`): heartbeats on,
  short real TB intervals, scripted ``kill -9`` of a component's
  *active*; asserts the elected shadow takes over on its own failure
  detector, then kills and recovers a peer from its file-backed stable
  storage.
"""

from __future__ import annotations

import json
import os
import select
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional

from ..errors import ReproError
from ..topology.election import elect_successor
from ..topology.model import MemberKind, Topology, parse_topology
from ..types import Role

#: Paper-shape member application/recovery order (kept for callers that
#: still think in the three historical roles).
ROLE_ORDER = (Role.ACTIVE_1, Role.SHADOW_1, Role.PEER_2)

#: Paper-shape node-to-role map (scripts name nodes, agents are
#: per-member).
NODE_ROLES = {"N1a": Role.ACTIVE_1, "N1b": Role.SHADOW_1, "N2": Role.PEER_2}


class HarnessError(ReproError):
    """A live agent failed to start, respond, or quiesce in time."""


def _free_port() -> int:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]
    finally:
        sock.close()


class AgentHandle:
    """One spawned agent process and its control channel."""

    def __init__(self, member: str, spec: Dict[str, Any],
                 log_path: str) -> None:
        self.member = member
        self.spec = spec
        self.log = open(log_path, "ab")
        src_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.live.agent", json.dumps(spec)],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE, stderr=self.log,
            env=env)
        self._buffer = b""

    # ------------------------------------------------------------------
    def _read_line(self, timeout: float) -> Dict[str, Any]:
        fd = self.proc.stdout.fileno()
        deadline = time.monotonic() + timeout
        while b"\n" not in self._buffer:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise HarnessError(
                    f"{self.member}: no response within {timeout:.1f}s")
            ready, _, _ = select.select([fd], [], [], remaining)
            if not ready:
                continue
            chunk = os.read(fd, 65536)
            if not chunk:
                raise HarnessError(
                    f"{self.member}: agent exited unexpectedly "
                    f"(code {self.proc.poll()})")
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return json.loads(line.decode("utf-8"))

    def wait_ready(self, timeout: float = 15.0) -> Dict[str, Any]:
        ready = self._read_line(timeout)
        if ready.get("event") != "ready":
            raise HarnessError(f"{self.member}: unexpected boot line {ready}")
        return ready

    def request(self, command: Dict[str, Any],
                timeout: float = 15.0) -> Dict[str, Any]:
        data = json.dumps(command) + "\n"
        try:
            self.proc.stdin.write(data.encode("utf-8"))
            self.proc.stdin.flush()
        except (BrokenPipeError, OSError) as exc:
            raise HarnessError(f"{self.member}: control channel closed "
                               f"({exc})") from exc
        response = self._read_line(timeout)
        if not response.get("ok", False):
            raise HarnessError(
                f"{self.member}: {command.get('cmd')} failed: "
                f"{response.get('error')}")
        return response

    # ------------------------------------------------------------------
    def kill9(self) -> int:
        """The fault model: SIGKILL, no cleanup, no goodbye."""
        self.proc.send_signal(signal.SIGKILL)
        code = self.proc.wait()
        self._close_pipes()
        return code

    def shutdown(self, timeout: float = 10.0) -> None:
        try:
            self.request({"cmd": "shutdown"}, timeout=timeout)
            self.proc.wait(timeout=timeout)
        except (HarnessError, subprocess.TimeoutExpired):
            self.proc.kill()
            self.proc.wait()
        self._close_pipes()

    def reap(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()
        self._close_pipes()

    def _close_pipes(self) -> None:
        for pipe in (self.proc.stdin, self.proc.stdout):
            try:
                pipe.close()
            except (OSError, ValueError):
                pass
        try:
            self.log.close()
        except OSError:
            pass


class LiveHarness:
    """Launch, drive, crash, and recover one OS process per member."""

    name = "live"

    def __init__(self, seed: int = 0, tb_interval: float = 10_000.0,
                 workdir: Optional[str] = None,
                 heartbeat: Optional[Dict[str, float]] = None,
                 deadline: float = 120.0, horizon: float = 1_000.0,
                 quiesce_horizon: float = 2.0,
                 topology: str = "paper") -> None:
        self.seed = seed
        self.tb_interval = tb_interval
        self.heartbeat = heartbeat
        self.deadline = deadline
        self.horizon = horizon
        self.quiesce_horizon = quiesce_horizon
        self.topology: Topology = parse_topology(topology)
        self.member_ids = list(self.topology.role_ids())
        self._node_member = {m.node_id: m.role_id
                             for m in self.topology.members}
        self.workdir = workdir or tempfile.mkdtemp(prefix="repro-live-")
        self._owns_workdir = workdir is None
        os.makedirs(self.workdir, exist_ok=True)
        #: One shared CLOCK_MONOTONIC origin: agents (including
        #: restarted ones) agree on local time the way the sim's
        #: roughly-synchronized clocks do.
        self.clock_origin = time.monotonic()
        self.ports = {member: _free_port() for member in self.member_ids}
        self.agents: Dict[str, AgentHandle] = {}
        self.deposed: List[str] = []
        self._deadline_at = 0.0

    # ------------------------------------------------------------------
    # specs and lifecycle
    # ------------------------------------------------------------------
    def _trace_path(self, member: str) -> str:
        return os.path.join(self.workdir, f"decisions_{member}.jsonl")

    def _spec(self, member: str, incarnation: int = 0) -> Dict[str, Any]:
        heartbeat = None
        if self.heartbeat is not None:
            heartbeat = dict(self.heartbeat)
            slot = self.topology.member(member)
            if slot.kind is MemberKind.SHADOW and self._is_successor(slot):
                heartbeat.setdefault(
                    "watch", self.topology.active_of(slot.component).role_id)
        spec = {
            "role": member,
            "seed": self.seed,
            "host": "127.0.0.1",
            "port": self.ports[member],
            "peers": {other: ["127.0.0.1", self.ports[other]]
                      for other in self.member_ids if other != member},
            "data_dir": os.path.join(self.workdir, f"stable_{member}"),
            "trace_path": self._trace_path(member),
            "tb_interval": self.tb_interval,
            "horizon": self.horizon,
            "clock_origin": self.clock_origin,
            "heartbeat": heartbeat,
            "incarnation": incarnation,
            "deposed": list(self.deposed),
        }
        if not self.topology.is_paper:
            spec["topology"] = self.topology.spec
            spec["node"] = self.topology.member(member).node_id
        return spec

    def _is_successor(self, slot) -> bool:
        """Whether ``slot`` is the deterministic takeover winner of its
        component (the one shadow that arms the failure detector)."""
        statuses = {m.role_id: "up" for m in self.topology.members}
        return elect_successor(self.topology, slot.component,
                               statuses) == slot.role_id

    def _spawn(self, member: str, incarnation: int = 0) -> AgentHandle:
        agent = AgentHandle(member, self._spec(member, incarnation),
                            os.path.join(self.workdir,
                                         f"agent_{member}.log"))
        agent.wait_ready(timeout=self._budget(15.0))
        self.agents[member] = agent
        return agent

    def _budget(self, cap: float) -> float:
        remaining = self._deadline_at - time.monotonic()
        if remaining <= 0:
            raise HarnessError("harness deadline exceeded")
        return min(cap, remaining)

    def _in_service(self) -> List[AgentHandle]:
        return [self.agents[member] for member in self.member_ids
                if member in self.agents]

    # ------------------------------------------------------------------
    # barriers
    # ------------------------------------------------------------------
    def quiesce_all(self, horizon: Optional[float] = None) -> None:
        """Block until every in-service agent is idle twice in a row
        (no unreceipted frames, no due protocol events)."""
        horizon = self.quiesce_horizon if horizon is None else horizon
        consecutive = 0
        while consecutive < 2:
            self._budget(1.0)
            idle = all(
                agent.request({"cmd": "quiesce", "horizon": horizon},
                              timeout=self._budget(15.0))["idle"]
                for agent in self._in_service())
            consecutive = consecutive + 1 if idle else 0
            time.sleep(0.02)

    # ------------------------------------------------------------------
    # scripted oracle runs
    # ------------------------------------------------------------------
    def _reset_artifacts(self) -> None:
        """A run boots from genesis: drop any previous run's decision
        traces and stable chains first.  Agents append to their
        decision files (a kill -9 respawn must continue the same
        trace), so a reused ``workdir`` would otherwise prepend a stale
        run's decisions and resurrect its checkpoints."""
        for member in self.member_ids:
            path = self._trace_path(member)
            if os.path.exists(path):
                os.remove(path)
            shutil.rmtree(os.path.join(self.workdir, f"stable_{member}"),
                          ignore_errors=True)

    def run_script(self, script) -> Dict[str, List[Dict[str, Any]]]:
        """Execute ``script`` on real processes; return decision traces."""
        self._deadline_at = time.monotonic() + self.deadline
        self._reset_artifacts()
        try:
            for member in self.member_ids:
                self._spawn(member)
            for agent in self._in_service():
                agent.request({"cmd": "start", "release": True},
                              timeout=self._budget(15.0))
            self.quiesce_all()
            for sequence, op in script.numbered():
                self._apply(op, sequence)
                self.quiesce_all()
            for agent in self._in_service():
                agent.shutdown(timeout=self._budget(10.0))
            return self.collect_decisions()
        finally:
            self._reap_all()

    def _apply(self, op, sequence: int) -> None:
        from ..runtime.script import member_targets
        if op.op == "settle":
            return
        if op.op == "tb-round":
            for agent in self._in_service():
                agent.request({"cmd": "tb-round"}, timeout=self._budget(15.0))
            return
        if op.op == "crash":
            agent = self.agents.pop(self._node_member[op.target])
            agent.kill9()
            return
        if op.op == "restart":
            self.recover_node(self._node_member[op.target])
            return
        for member in member_targets(op.target, self.topology):
            if member in self.agents:
                self.agents[member].request(
                    {"cmd": "op", "op": op.op, "index": sequence,
                     "stimulus": op.stimulus}, timeout=self._budget(15.0))

    # ------------------------------------------------------------------
    # coordinated hardware recovery (HardwareRecoveryCoordinator's
    # phases, orchestrated across address spaces)
    # ------------------------------------------------------------------
    def recover_node(self, member) -> Dict[str, Any]:
        # The restarted agent comes up *held*: it receipts traffic but
        # dispatches nothing until recovery has restored its state and
        # fenced the old incarnation.
        if isinstance(member, Role):
            member = member.value
        current = max((agent.request({"cmd": "status"},
                                     timeout=self._budget(15.0))["incarnation"]
                       for agent in self._in_service()), default=0)
        restarted = self._spawn(member, incarnation=current)
        restarted.request({"cmd": "start", "release": False},
                          timeout=self._budget(15.0))
        latest = [agent.request({"cmd": "hw-latest"},
                                timeout=self._budget(15.0))
                  for agent in self._in_service()]
        epochs = [entry["epoch"] for entry in latest]
        if any(epoch is None for epoch in epochs):
            raise HarnessError("a process has no stable checkpoint (no genesis?)")
        line = min(epochs)
        boundaries = [entry["boundary"] for entry in latest
                      if entry["boundary"] is not None]
        boundary = max(boundaries) if boundaries else None
        incarnation = current + 1
        for agent in self._in_service():
            agent.request({"cmd": "hw-recover", "line": line,
                           "boundary": boundary, "incarnation": incarnation},
                          timeout=self._budget(15.0))
        for agent in self._in_service():
            agent.request({"cmd": "hw-resend", "deposed": list(self.deposed)},
                          timeout=self._budget(15.0))
        restarted.request({"cmd": "release"}, timeout=self._budget(15.0))
        return {"line": line, "boundary": boundary, "incarnation": incarnation}

    # ------------------------------------------------------------------
    # artifacts
    # ------------------------------------------------------------------
    def collect_decisions(self) -> Dict[str, List[Dict[str, Any]]]:
        """Read back the per-process decision JSONL artifacts (same
        shape as ``decisions_from_trace``: only processes that decided
        something appear)."""
        decisions: Dict[str, List[Dict[str, Any]]] = {}
        for member in self.member_ids:
            path = self._trace_path(member)
            if not os.path.exists(path):
                continue
            with open(path, "r", encoding="utf-8") as handle:
                records = [json.loads(line) for line in handle
                           if line.strip()]
            if records:
                decisions[member] = records
        return decisions

    def cleanup(self) -> None:
        """Remove the working directory (only if the harness made it)."""
        if self._owns_workdir:
            shutil.rmtree(self.workdir, ignore_errors=True)

    def _reap_all(self) -> None:
        for agent in self.agents.values():
            agent.reap()
        self.agents.clear()

    # ------------------------------------------------------------------
    # live failure demo
    # ------------------------------------------------------------------
    def run_demo(self) -> Dict[str, Any]:
        """Heartbeat failover end to end, on real processes.

        ``kill -9`` component 1's active mid-run; the elected shadow's
        own failure detector must promote it (no harness involvement).
        Then ``kill -9`` the first peer and run the coordinated
        hardware recovery from file-backed stable storage.  Returns a
        summary dict; the decision artifacts stay in ``workdir``.
        """
        if self.heartbeat is None:
            self.heartbeat = {"interval": 0.15, "timeout": 0.75}
        self._deadline_at = time.monotonic() + self.deadline
        active_id = self.topology.active_of(1).role_id
        successor_id = self.topology.shadows_of(1)[0].role_id
        peer_ids = [p.role_id for p in self.topology.peers()]
        summary: Dict[str, Any] = {"seed": self.seed,
                                   "tb_interval": self.tb_interval,
                                   "workdir": self.workdir,
                                   "topology": self.topology.spec}
        self._reset_artifacts()
        try:
            for member in self.member_ids:
                self._spawn(member)
            for agent in self._in_service():
                agent.request({"cmd": "start", "release": True},
                              timeout=self._budget(15.0))
            self._demo_op("internal", 0, 41)
            self._demo_op("external", 1, 42)
            # Let at least two periodic TB boundaries pass for real.
            time.sleep(2.2 * self.tb_interval)
            self.quiesce_all(horizon=0.0)

            active = self.agents.pop(active_id)
            summary["active_killed"] = active.kill9() == -signal.SIGKILL
            self.deposed = [active_id]
            summary["takeover"] = self._await_takeover(successor_id)
            summary["peer_adopted"] = self._await_takeover(peer_ids[0])

            self._demo_op("internal", 2, 43)
            self._demo_op("external", 3, 44)
            self.quiesce_all(horizon=0.0)

            peer = self.agents.pop(peer_ids[0])
            summary["peer_killed"] = peer.kill9() == -signal.SIGKILL
            time.sleep(0.2)
            summary["hardware_recovery"] = self.recover_node(peer_ids[0])
            self._demo_op("internal", 4, 45)
            self.quiesce_all(horizon=0.0)

            for agent in self._in_service():
                agent.shutdown(timeout=self._budget(10.0))
            decisions = self.collect_decisions()
            summary["decisions"] = {pid: len(seq)
                                    for pid, seq in decisions.items()}
            shadow = decisions.get(successor_id, [])
            peer_seq = decisions.get(peer_ids[0], [])
            summary["shadow_recovered"] = any(
                entry["event"].startswith("recovery.") for entry in shadow)
            summary["peer_rolled_back"] = any(
                entry["event"] == "recovery.rollback.hardware"
                for entry in peer_seq)
            summary["ok"] = bool(
                summary["active_killed"] and summary["takeover"]
                and summary["peer_killed"] and summary["shadow_recovered"]
                and summary["peer_rolled_back"])
            with open(os.path.join(self.workdir, "demo_summary.json"), "w",
                      encoding="utf-8") as handle:
                json.dump(summary, handle, indent=2, sort_keys=True)
            return summary
        finally:
            self._reap_all()

    def _demo_op(self, op: str, sequence: int, stimulus: int) -> None:
        """Apply a component-1 op to whichever replicas are in service."""
        from ..runtime.script import member_targets
        for member in member_targets("C1", self.topology):
            if member in self.agents:
                self.agents[member].request(
                    {"cmd": "op", "op": op, "index": sequence,
                     "stimulus": stimulus}, timeout=self._budget(15.0))
        self.quiesce_all(horizon=0.0)

    def _await_takeover(self, member: str) -> Optional[Dict[str, Any]]:
        """Poll ``member``'s status until its takeover summary appears."""
        while True:
            self._budget(1.0)
            status = self.agents[member].request({"cmd": "status"},
                                                 timeout=self._budget(15.0))
            if status.get("takeover"):
                return status["takeover"]
            time.sleep(0.1)
