"""One live protocol process.

``python -m repro.live.agent '<spec-json>'`` hosts exactly one
:class:`~repro.host.FtProcess` — wired with the same engines, RNG
streams, and configuration the sim backend's ``COORDINATED`` scheme
uses — on the live adapters: wall clock, TCP transport, file-backed
stable storage.  The spec names a topology member; the paper shape
gets the historical ``Modified*`` engines, any other topology the
per-source-provenance engines from :mod:`repro.topology.engines` —
exactly mirroring :class:`~repro.coordination.scheme.System`'s wiring
so the two backends stay decision-equivalent.  The harness drives it
over a line-JSON control channel on stdin/stdout (commands below);
peer traffic arrives on the listening socket; protocol decisions
stream to a JSONL artifact via the shared
:mod:`repro.runtime.decisions` normalizer.

Control commands::

    start {release}    bind driver + TB engine; optionally leave held mode
    release            leave held mode (post-recovery restarts)
    op {op, index, stimulus}   inject one scripted workload action
    tb-round           trigger one checkpoint establishment
    quiesce {horizon}  report whether the process is idle
    status             role/incarnation/takeover/confidence snapshot
    hw-latest          latest stable epoch + next TB boundary index
    hw-recover {line, boundary, incarnation}   roll back to the line
    hw-resend          re-send unacknowledged messages, resume driver
    shutdown           flush artifacts and exit

A (re)starting agent is *held*: inbound frames are receipted and
buffered but not dispatched until the harness releases it, so recovery
always completes before old-incarnation traffic can reach the protocol
layer (where the incarnation fence then drops it, exactly like the
sim's dropped in-flight deliveries).
"""

from __future__ import annotations

import json
import os
import selectors
import socket
import sys
import uuid
from typing import Any, Dict, Optional

from ..app.acceptance import AcceptanceTest, AcceptanceTestConfig
from ..app.component import ApplicationComponent
from ..app.versions import HighConfidenceVersion, LowConfidenceVersion
from ..app.workload import WorkloadConfig, WorkloadDriver, generate_actions
from ..host import FtProcess, IncarnationCounter
from ..mdcd.modified import (ModifiedActiveEngine, ModifiedPeerEngine,
                             ModifiedShadowEngine)
from ..messages.message import reset_msg_ids
from ..runtime import ClockConfig, NetworkConfig, RngRegistry, TraceRecorder
from ..runtime.decisions import record_to_decision
from ..runtime.script import SCRIPT_ACTION_BASE, _ACTION_KINDS
from ..tb.adapted import AdaptedTbEngine
from ..tb.blocking import TbConfig
from ..tb.resync import ResyncService
from ..topology.engines import (TopologyActiveEngine, TopologyPeerEngine,
                                TopologyShadowEngine)
from ..topology.model import MemberKind, parse_topology
from ..types import NodeId, ProcessId, Role
from .clock import WallClock
from .failover import drop_recipient, peer_adopt_takeover, shadow_takeover
from .loop import LiveScheduler
from .node import LiveNode
from .storage import FileStableStore
from .transport import LiveTransport

#: Near-zero Poisson rate (mirrors the sim backend's scripted config).
_IDLE_RATE = 1e-12


class LiveAgent:
    """Build and run one protocol process from its harness spec."""

    def __init__(self, spec: Dict[str, Any]) -> None:
        self.spec = spec
        self.topology = parse_topology(spec.get("topology", "paper"))
        self.member = self.topology.member(spec["role"])
        self.role: Optional[Role] = (Role(self.member.role_id)
                                     if self.topology.is_paper else None)
        self.process_id = ProcessId(self.member.role_id)
        self.seed = int(spec.get("seed", 0))
        self.tb_interval = float(spec.get("tb_interval", 10_000.0))
        self.horizon = float(spec.get("horizon", 1_000.0))
        self.running = True
        self.takeover_summary: Optional[Dict[str, Any]] = None

        self.clock = WallClock(origin=spec.get("clock_origin"))
        self.scheduler = LiveScheduler(self.clock)
        self.selector = selectors.DefaultSelector()

        listen = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listen.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listen.bind((spec.get("host", "127.0.0.1"), int(spec["port"])))
        listen.listen(8)
        self.transport = LiveTransport(
            self.process_id, self.scheduler, self.selector, listen,
            peers={peer: tuple(addr) for peer, addr in spec["peers"].items()},
            session=uuid.uuid4().hex)
        self.transport.on_control = self._on_control

        self.stable = FileStableStore(spec["data_dir"],
                                      history=int(spec.get("stable_history", 2)))
        self.node = LiveNode(NodeId(spec.get("node", f"N:{self.process_id}")),
                             self.scheduler, self.clock, self.stable)
        self.rng = RngRegistry(self.seed)
        self.incarnation = IncarnationCounter()
        self.incarnation.value = int(spec.get("incarnation", 0))

        self.trace = TraceRecorder(enabled=True)
        self._decision_file = open(spec["trace_path"], "a", encoding="utf-8")
        self.trace.subscribe(self._on_trace_record)
        debug_dir = os.environ.get("REPRO_LIVE_TRACE_DIR")
        self._debug_file = None
        if debug_dir:
            self._debug_file = open(
                os.path.join(debug_dir, f"trace_{self.process_id}.jsonl"),
                "a", encoding="utf-8")
            self.trace.subscribe(self._on_debug_record)

        self.process = self._build_process()
        self._wire_engines()
        # A process restarted after a software takeover must not talk to
        # the deposed active: the sim keeps the survivors' mutated
        # engines in memory, a fresh OS process re-applies the exclusion
        # from its spec.
        for dead in spec.get("deposed", []):
            drop_recipient(self.process.software, ProcessId(str(dead)))
            self.transport.drop_peer(str(dead))

        self._hb = spec.get("heartbeat") or None
        self._watch: Optional[str] = self._hb.get("watch") if self._hb else None
        self._started = False

        # Control channel: unbuffered byte reads off stdin, line JSON out.
        self._stdin_buffer = b""
        os.set_blocking(sys.stdin.fileno(), False)
        self.selector.register(sys.stdin.fileno(), selectors.EVENT_READ,
                               self._stdin_readable)

    # ------------------------------------------------------------------
    # construction (mirrors coordination.scheme for COORDINATED)
    # ------------------------------------------------------------------
    def _build_process(self) -> FtProcess:
        stream, driver_name = self.member.stream, self.member.driver
        idle = WorkloadConfig(internal_rate=_IDLE_RATE, external_rate=_IDLE_RATE,
                              step_rate=_IDLE_RATE, horizon=self.horizon)
        actions = generate_actions(idle, self.rng, stream)
        if self.member.kind is MemberKind.ACTIVE:
            component = ApplicationComponent(
                stream,
                LowConfidenceVersion(f"component{self.member.component}-low"))
        elif self.member.kind is MemberKind.SHADOW:
            component = ApplicationComponent(
                stream, HighConfidenceVersion(f"{stream}-high"))
        else:
            component = ApplicationComponent(
                stream, HighConfidenceVersion(stream))
        driver = WorkloadDriver(self.scheduler, actions, driver_name)
        process = FtProcess(
            process_id=self.process_id, node=self.node, network=self.transport,
            component=component, driver=driver, incarnation=self.incarnation,
            role=self.role, trace=self.trace)
        process.is_guarded_active = self.member.kind is MemberKind.ACTIVE
        process.journal_retention = max(600.0, 4.0 * self.tb_interval)
        return process

    def _wire_engines(self) -> None:
        process = self.process
        at_config = AcceptanceTestConfig(
            **(self.spec.get("at") or {}))
        if not self.topology.is_paper:
            software = self._topology_engine(at_config)
        elif self.role is Role.ACTIVE_1:
            software = ModifiedActiveEngine(
                process, AcceptanceTest(at_config, self.rng, "P1act"),
                peer=ProcessId(Role.PEER_2.value),
                shadow=ProcessId(Role.SHADOW_1.value))
        elif self.role is Role.SHADOW_1:
            software = ModifiedShadowEngine(process)
        else:
            software = ModifiedPeerEngine(
                process, AcceptanceTest(at_config, self.rng, "P2"))
        process.replay_dedup = True
        resync = ResyncService(self.scheduler, [self.clock], self.trace)
        hardware = AdaptedTbEngine(
            process, TbConfig(interval=self.tb_interval),
            ClockConfig(), NetworkConfig(), resync=resync)
        process.attach_engines(software=software, hardware=hardware)

    def _topology_engine(self, at_config: AcceptanceTestConfig):
        """The per-source-provenance engine for this member — the same
        wiring :meth:`System._wire_topology_engines` performs in the
        sim's single address space."""
        topo, member, process = self.topology, self.member, self.process
        peer_pids = [ProcessId(p.role_id) for p in topo.peers()]
        active_pids = [ProcessId(a.role_id) for a in topo.actives()]
        if member.kind is MemberKind.ACTIVE:
            return TopologyActiveEngine(
                process, AcceptanceTest(at_config, self.rng, member.driver),
                shadows=[ProcessId(s.role_id)
                         for s in topo.shadows_of(member.component)],
                peers=peer_pids)
        if member.kind is MemberKind.SHADOW:
            return TopologyShadowEngine(
                process,
                active_id=ProcessId(topo.active_of(member.component).role_id),
                peers=peer_pids)
        return TopologyPeerEngine(
            process, AcceptanceTest(at_config, self.rng, member.driver),
            active_ids=active_pids,
            other_peers=[pid for pid in peer_pids
                         if pid != process.process_id],
            notification_recipients=[ProcessId(rid)
                                     for rid in topo.role_ids()
                                     if rid != member.role_id])

    # ------------------------------------------------------------------
    # decision artifact
    # ------------------------------------------------------------------
    def _on_trace_record(self, record) -> None:
        decision = record_to_decision(record)
        if decision is None or record.process != self.process_id:
            return
        self._decision_file.write(json.dumps(decision, sort_keys=True) + "\n")
        self._decision_file.flush()

    def _on_debug_record(self, record) -> None:
        """Raw-trace diagnostics (``REPRO_LIVE_TRACE_DIR``): every trace
        record, not just normalized decisions."""
        self._debug_file.write(json.dumps(
            {"t": record.time, "category": record.category,
             "process": None if record.process is None else str(record.process),
             "data": {k: repr(v) for k, v in record.data.items()}},
            sort_keys=True) + "\n")
        self._debug_file.flush()

    # ------------------------------------------------------------------
    # control channel
    # ------------------------------------------------------------------
    def _stdin_readable(self) -> None:
        try:
            chunk = os.read(sys.stdin.fileno(), 65536)
        except (BlockingIOError, InterruptedError):
            return
        if not chunk:
            # Harness died: there is no one to coordinate with.
            self.running = False
            return
        self._stdin_buffer += chunk
        while b"\n" in self._stdin_buffer:
            line, self._stdin_buffer = self._stdin_buffer.split(b"\n", 1)
            if line.strip():
                self._handle_command(json.loads(line.decode("utf-8")))

    def _reply(self, payload: Dict[str, Any]) -> None:
        sys.stdout.write(json.dumps(payload, sort_keys=True) + "\n")
        sys.stdout.flush()

    def _handle_command(self, command: Dict[str, Any]) -> None:
        name = command.get("cmd", "")
        try:
            handler = getattr(self, f"_cmd_{name.replace('-', '_')}")
        except AttributeError:
            self._reply({"ok": False, "error": f"unknown command {name!r}"})
            return
        try:
            response = handler(command) or {}
        except Exception as exc:  # noqa: BLE001 - reported to the harness
            self._reply({"ok": False, "error": f"{type(exc).__name__}: {exc}"})
            return
        response.setdefault("ok", True)
        self._reply(response)

    # -- commands ------------------------------------------------------
    def _cmd_start(self, command: Dict[str, Any]) -> Dict[str, Any]:
        if not self._started:
            reset_msg_ids()
            self.process.start()
            self._started = True
            if self._hb:
                self._schedule_heartbeat()
        if command.get("release", True):
            self.transport.release_held()
        return {"started": True}

    def _cmd_release(self, _command: Dict[str, Any]) -> Dict[str, Any]:
        self.transport.release_held()
        return {}

    def _cmd_op(self, command: Dict[str, Any]) -> Dict[str, Any]:
        from ..app.workload import Action
        kind = _ACTION_KINDS[command["op"]]
        action = Action(index=SCRIPT_ACTION_BASE + int(command["index"]),
                        kind=kind, gap=0.0, stimulus=int(command["stimulus"]))
        self.process.perform_action(action)
        return {}

    def _cmd_tb_round(self, _command: Dict[str, Any]) -> Dict[str, Any]:
        if self.process.hardware is not None:
            self.process.hardware.trigger_round()
        return {}

    def _cmd_quiesce(self, command: Dict[str, Any]) -> Dict[str, Any]:
        horizon = float(command.get("horizon", 2.0))
        pending = (len(self.scheduler.pending_within(horizon))
                   if horizon > 0 else 0)
        unreceipted = self.transport.unreceipted_count()
        return {"idle": unreceipted == 0 and pending == 0,
                "unreceipted": unreceipted, "pending": pending}

    def _cmd_status(self, _command: Dict[str, Any]) -> Dict[str, Any]:
        process = self.process
        return {
            "role": self.member.role_id,
            "incarnation": self.incarnation.value,
            "deposed": process.deposed,
            "guarded": process.mdcd.guarded,
            "dirty": process.confidence_bit(),
            "ndc": process.current_ndc(),
            "takeover": self.takeover_summary,
            "stable_epochs": self.stable.epochs(self.process_id),
            "counters": self.transport.counters,
        }

    def _cmd_hw_latest(self, _command: Dict[str, Any]) -> Dict[str, Any]:
        latest = self.stable.peek(self.process_id)
        boundary = (self.process.hardware.next_boundary_index()
                    if self.process.hardware is not None else None)
        return {"epoch": None if latest is None else latest.epoch,
                "boundary": boundary}

    def _cmd_hw_recover(self, command: Dict[str, Any]) -> Dict[str, Any]:
        """One process's slice of HardwareRecoveryCoordinator.recover_all:
        fence, discard the abandoned timeline, restore the line
        checkpoint, re-align the TB engine on the agreed boundary."""
        line = int(command["line"])
        process = self.process
        self.incarnation.value = int(command["incarnation"])
        checkpoint = self.stable.at_epoch(self.process_id, line)
        if checkpoint is None:
            history = self.stable.history(self.process_id)
            if not history:
                raise RuntimeError(f"{self.process_id} has no stable checkpoints")
            process.counters.bump("recovery.line_fallback")
            checkpoint = history[0]
        stale = self.stable.discard_after_epoch(self.process_id, line)
        if stale:
            process.counters.bump("recovery.stale_epochs_discarded", stale)
        distance = process.restore_from(checkpoint, "hardware")
        if process.hardware is not None:
            process.hardware.reset_after_recovery(
                line, command.get("boundary"))
        return {"distance": distance, "epoch": line}

    def _cmd_hw_resend(self, command: Dict[str, Any]) -> Dict[str, Any]:
        deposed = {str(pid) for pid in command.get("deposed", [])}
        resent = 0
        for message in self.process.acks.unacknowledged():
            if str(message.receiver) in deposed:
                self.process.acks.acked(message.msg_id)
                continue
            self.process.resend(message)
            resent += 1
        self.process.driver.resume()
        return {"resent": resent}

    def _cmd_shutdown(self, _command: Dict[str, Any]) -> Dict[str, Any]:
        self.running = False
        return {"bye": True}

    # ------------------------------------------------------------------
    # heartbeat failure detection (live-only; drives shadow takeover)
    # ------------------------------------------------------------------
    def _schedule_heartbeat(self) -> None:
        interval = float(self._hb.get("interval", 0.2))
        self._hb_started_at = self.scheduler.now
        self.scheduler.schedule_after(interval, self._heartbeat_tick,
                                      args=(interval,), label="_infra:hb")

    def _heartbeat_tick(self, interval: float) -> None:
        if not self.running:
            return
        self.transport.send_heartbeat()
        if self._watch:
            self._check_watch()
        self.scheduler.schedule_after(interval, self._heartbeat_tick,
                                      args=(interval,), label="_infra:hb")

    def _check_watch(self) -> None:
        timeout = float(self._hb.get("timeout", 1.0))
        last = self.transport.last_heard.get(self._watch, self._hb_started_at)
        if self.scheduler.now - last < timeout:
            return
        condemned, self._watch = self._watch, None
        if (self.member.kind is MemberKind.SHADOW
                and not self.takeover_summary):
            self._run_takeover(condemned)

    def _run_takeover(self, condemned: str) -> None:
        active_id = ProcessId(condemned)
        peer_ids = [ProcessId(p.role_id) for p in self.topology.peers()]
        self.transport.drop_peer(condemned)
        self.takeover_summary = shadow_takeover(
            self.process, active_id, peer_ids[0], self.incarnation,
            peer_ids=None if self.topology.is_paper else peer_ids)
        for peer_id in peer_ids:
            self.transport.send_control(str(peer_id), {
                "type": "takeover", "active": condemned,
                "incarnation": self.incarnation.value})

    def _on_control(self, payload: Dict[str, Any]) -> None:
        if payload.get("type") != "takeover":
            return
        active = str(payload.get("active", ""))
        if self.member.kind is MemberKind.PEER:
            summary = peer_adopt_takeover(
                self.process, ProcessId(active), self.incarnation,
                int(payload.get("incarnation", 0)))
            if summary is not None:
                self.takeover_summary = summary
                self.transport.drop_peer(active)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> int:
        self._reply({"event": "ready", "process": str(self.process_id),
                     "pid": os.getpid()})
        while self.running:
            delay = self.scheduler.run_due()
            timeout = 0.1 if delay is None else max(0.0, min(delay, 0.1))
            for key, _mask in self.selector.select(timeout):
                key.data()
        self._decision_file.flush()
        self._decision_file.close()
        self.transport.close()
        return 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.live.agent '<spec-json>'", file=sys.stderr)
        return 2
    spec = json.loads(argv[0])
    return LiveAgent(spec).run()


if __name__ == "__main__":
    sys.exit(main())
