"""Local-clock alarms on top of :class:`~repro.sim.clock.DriftingClock`.

The TB checkpointing protocols set their next checkpoint at a *local*
time (``dCKPT_time = dCKPT_time + Delta`` in the paper's Fig. 5).  A
:class:`TimerService` converts local deadlines into true-time simulator
events, and transparently re-converts pending alarms whenever its clock
is resynchronized (a resync shifts the mapping between local and true
time, so the original conversion becomes stale).
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Callable, Dict, Optional

from ..errors import SchedulingError
from .clock import DriftingClock
from .events import Event, EventPriority
from .kernel import Simulator


@dataclasses.dataclass
class Alarm:
    """Handle for a pending local-time alarm."""

    alarm_id: int
    local_deadline: float
    callback: Callable[..., Any]
    args: tuple
    label: str
    event: Optional[Event] = None
    fired: bool = False
    cancelled: bool = False
    #: The simulator-event label, built once at arm time (resyncs reuse
    #: it instead of re-formatting per reschedule).
    event_label: str = ""

    def cancel(self) -> None:
        """Cancel the alarm; a no-op if it already fired or was
        cancelled (the event handle may since have been recycled)."""
        if self.fired or self.cancelled:
            return
        self.cancelled = True
        if self.event is not None:
            self.event.cancel()


class TimerService:
    """Schedules callbacks at local-clock deadlines.

    One service per process/node.  Alarms survive clock
    resynchronizations: when the underlying clock is re-anchored, every
    pending alarm's true-time event is cancelled and the whole set is
    rescheduled in one bulk kernel call from the new mapping.  A
    deadline that is already in the (local) past after a resync fires
    immediately.
    """

    def __init__(self, sim: Simulator, clock: DriftingClock) -> None:
        self._sim = sim
        self._clock = clock
        self._alarms: Dict[int, Alarm] = {}
        self._ids = itertools.count(1)
        clock.on_resync(self._handle_resync)

    @property
    def clock(self) -> DriftingClock:
        """The local clock deadlines are interpreted against."""
        return self._clock

    def set_alarm(self, local_deadline: float, callback: Callable[..., Any],
                  args: tuple = (), label: str = "") -> Alarm:
        """Schedule ``callback(*args)`` when the local clock reads
        ``local_deadline``.  Deadlines at or before the current local
        time fire at the current true time (not an error — the TB
        protocol re-arms its periodic timer with absolute local
        deadlines that may have just been overrun)."""
        alarm = Alarm(alarm_id=next(self._ids), local_deadline=local_deadline,
                      callback=callback, args=args, label=label,
                      event_label=f"alarm:{label}")
        self._alarms[alarm.alarm_id] = alarm
        self._arm(alarm)
        return alarm

    def set_alarm_after(self, local_delay: float, callback: Callable[..., Any],
                        args: tuple = (), label: str = "") -> Alarm:
        """Schedule relative to the current local-clock reading."""
        if local_delay < 0:
            raise SchedulingError(f"negative local delay {local_delay} for {label!r}")
        return self.set_alarm(self._clock.now() + local_delay, callback,
                              args=args, label=label)

    def pending(self) -> int:
        """Number of alarms that have neither fired nor been cancelled."""
        return sum(1 for a in self._alarms.values() if not a.fired and not a.cancelled)

    def cancel_all(self) -> None:
        """Cancel every pending alarm (used when a node crashes)."""
        for alarm in self._alarms.values():
            if not alarm.fired:
                alarm.cancel()

    # ------------------------------------------------------------------
    def _arm(self, alarm: Alarm) -> None:
        true_deadline = self._clock.true_time_of(alarm.local_deadline)
        true_deadline = max(true_deadline, self._sim.now)
        alarm.event = self._sim.schedule_at(
            true_deadline, self._fire, args=(alarm,),
            priority=EventPriority.TIMER, label=alarm.event_label)

    def _fire(self, alarm: Alarm) -> None:
        if alarm.cancelled or alarm.fired:
            return
        alarm.fired = True
        self._alarms.pop(alarm.alarm_id, None)
        alarm.callback(*alarm.args)

    def _handle_resync(self, _clock: DriftingClock) -> None:
        # Re-anchor every pending alarm in one bulk kernel call: cancel
        # the stale events, then hand the kernel the full batch of
        # re-converted deadlines (sequence numbers are assigned in the
        # same alarm order a per-alarm loop would produce, so tie-break
        # determinism is unchanged).
        pending = [alarm for alarm in self._alarms.values()
                   if not alarm.fired and not alarm.cancelled]
        if not pending:
            return
        true_time_of = self._clock.true_time_of
        fire = self._fire
        timer_priority = EventPriority.TIMER
        now = self._sim.now
        specs = []
        for alarm in pending:
            if alarm.event is not None:
                alarm.event.cancel()
            deadline = true_time_of(alarm.local_deadline)
            if deadline < now:
                deadline = now
            specs.append((deadline, fire, (alarm,), timer_priority,
                          alarm.event_label))
        for alarm, event in zip(pending, self._sim.schedule_many(specs)):
            alarm.event = event
