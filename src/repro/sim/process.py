"""Base class for simulated processes.

:class:`SimProcess` wires a process into the substrate: it registers a
network endpoint whose liveness follows the hosting node, and exposes
overridable hooks for message delivery, acknowledgements, and node
crash/restart.  Protocol behaviour lives in subclasses (see
:class:`repro.host.FtProcess`).
"""

from __future__ import annotations

from typing import Optional

from ..errors import NodeCrashedError
from ..messages.message import Message
from ..types import ProcessId
from .network import Endpoint, Network, Transmission
from .node import Node
from .trace import TraceRecorder


class SimProcess:
    """A process hosted on a :class:`~repro.sim.node.Node`.

    Subclasses override :meth:`handle_message`, :meth:`handle_ack`,
    :meth:`on_node_crash` and :meth:`on_node_restart`.
    """

    def __init__(self, process_id: ProcessId, node: Node, network: Network,
                 trace: Optional[TraceRecorder] = None) -> None:
        self.process_id = process_id
        self.node = node
        self.network = network
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        # Bound methods (not lambdas) so a whole system — endpoints and
        # node listeners included — pickles into a warm-start image.
        network.register(Endpoint(
            process_id=process_id,
            deliver=self._deliver,
            on_ack=self._ack,
            is_alive=self._node_alive,
        ))
        node.on_crash(self._handle_node_crash)
        node.on_restart(self._handle_node_restart)

    # ------------------------------------------------------------------
    @property
    def sim(self):
        """The simulator the hosting node lives on."""
        return self.node.sim

    @property
    def alive(self) -> bool:
        """Whether the hosting node is up."""
        return not self.node.crashed

    def transmit(self, message: Message) -> Transmission:
        """Put a message on the wire (refused while crashed)."""
        if self.node.crashed:
            raise NodeCrashedError(
                f"{self.process_id} cannot send while {self.node.node_id} is down")
        trace = self.trace
        if trace.enabled and trace.wants("message.send"):
            trace.record(self.sim.now, "message.send", self.process_id,
                         desc=message.describe(), msg_id=message.msg_id)
        return self.network.send(message)

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    def handle_message(self, message: Message) -> Optional[bool]:
        """Process a delivered message.  Subclasses override.

        Return ``False`` to *reject* the delivery: the network will not
        acknowledge it, leaving it in the sender's unacknowledged set.
        Any other return value counts as accepted.
        """
        return True

    def handle_ack(self, msg_id: int) -> None:
        """Process a network acknowledgement.  Subclasses override."""

    def on_node_crash(self) -> None:
        """Called when the hosting node crashes.  Subclasses override."""

    def on_node_restart(self) -> None:
        """Called when the hosting node restarts.  Subclasses override."""

    # ------------------------------------------------------------------
    def _node_alive(self) -> bool:
        return not self.node.crashed

    def _handle_node_crash(self, _node: Node) -> None:
        self.on_node_crash()

    def _handle_node_restart(self, _node: Node) -> None:
        self.on_node_restart()

    def _deliver(self, message: Message) -> Optional[bool]:
        if self.node.crashed:
            return False
        trace = self.trace
        if trace.enabled and trace.wants("message.deliver"):
            trace.record(self.sim.now, "message.deliver", self.process_id,
                         desc=message.describe(), msg_id=message.msg_id)
        return self.handle_message(message)

    def _ack(self, msg_id: int) -> None:
        if self.node.crashed:
            return
        self.handle_ack(msg_id)
