"""Lightweight statistics collectors used across experiments.

No numpy dependency here on purpose: the collectors are updated on hot
simulation paths, and Welford accumulation in plain Python is both fast
enough and exact for the sample sizes involved.  The experiment layer
converts the results to whatever the reporting needs.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional


# Two-sided 95% Student-t critical values by degrees of freedom.  The
# quick benches run campaigns with a handful of replications; for those
# sample sizes the normal z=1.96 understates the interval badly (df=1
# needs 12.7).  Past df=29 the t distribution is within 2% of normal and
# the table hands over to z.
_T_CRITICAL_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179,
    13: 2.160, 14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101,
    19: 2.093, 20: 2.086, 21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064,
    25: 2.060, 26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045,
}

_Z_CRITICAL_95 = 1.96


def t_critical_95(df: int) -> float:
    """Two-sided 95% critical value: Student-t for small ``df``, normal
    approximation from 30 degrees of freedom on."""
    if df < 1:
        return _Z_CRITICAL_95
    return _T_CRITICAL_95.get(df, _Z_CRITICAL_95)


class RunningStat:
    """Streaming mean / variance / extrema (Welford's algorithm)."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def add(self, value: float) -> None:
        """Fold one observation into the statistic."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)

    def merge(self, other: "RunningStat") -> None:
        """Fold another statistic in (parallel Welford merge)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count, self._mean, self._m2 = other.count, other._mean, other._m2
            self.minimum, self.maximum = other.minimum, other.maximum
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)  # type: ignore[type-var]
        self.maximum = max(self.maximum, other.maximum)  # type: ignore[type-var]

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two samples)."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        return self.stdev / math.sqrt(self.count) if self.count else 0.0

    def confidence_halfwidth(self, z: Optional[float] = None) -> float:
        """Half-width of a 95% confidence interval for the mean.

        With fewer than 30 samples the critical value comes from the
        Student-t distribution (the sample variance is itself noisy);
        larger samples use the normal approximation.  Pass ``z`` to
        force a specific critical value.
        """
        if z is None:
            z = t_critical_95(self.count - 1)
        return z * self.stderr

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot for cross-process transport and caching."""
        return {
            "count": self.count,
            "mean": self._mean,
            "m2": self._m2,
            "minimum": self.minimum,
            "maximum": self.maximum,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunningStat":
        """Rebuild a statistic from :meth:`to_dict` output."""
        stat = cls()
        stat.count = int(data["count"])  # type: ignore[arg-type]
        stat._mean = float(data["mean"])  # type: ignore[arg-type]
        stat._m2 = float(data["m2"])  # type: ignore[arg-type]
        stat.minimum = (None if data["minimum"] is None
                        else float(data["minimum"]))  # type: ignore[arg-type]
        stat.maximum = (None if data["maximum"] is None
                        else float(data["maximum"]))  # type: ignore[arg-type]
        return stat


class TimeWeightedValue:
    """Integrates a piecewise-constant signal over simulated time.

    Used for metrics such as "fraction of time the dirty bit was set"
    or "fraction of time spent blocked".
    """

    def __init__(self, initial: float, at: float) -> None:
        self._value = initial
        self._since = at
        self._integral = 0.0
        self._origin = at

    @property
    def value(self) -> float:
        """Current value of the signal."""
        return self._value

    def set(self, value: float, at: float) -> None:
        """Change the signal value at time ``at``."""
        self._integral += self._value * (at - self._since)
        self._value = value
        self._since = at

    def integral(self, until: float) -> float:
        """Integral of the signal from creation until ``until``."""
        return self._integral + self._value * (until - self._since)

    def mean(self, until: float) -> float:
        """Time-average of the signal from creation until ``until``."""
        span = until - self._origin
        return self.integral(until) / span if span > 0 else self._value


@dataclasses.dataclass
class CounterSet:
    """A named bag of integer counters."""

    counts: Dict[str, int] = dataclasses.field(default_factory=dict)

    def bump(self, name: str, by: int = 1) -> None:
        """Increment ``name`` by ``by``."""
        self.counts[name] = self.counts.get(name, 0) + by

    def get(self, name: str) -> int:
        """Current value of ``name`` (0 if never bumped)."""
        return self.counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Copy of all counters."""
        return dict(self.counts)


def summarize(values: List[float]) -> RunningStat:
    """Build a :class:`RunningStat` from a list in one call."""
    stat = RunningStat()
    for v in values:
        stat.add(v)
    return stat
