"""Drifting local clocks with bounded skew — the TB protocols' timer model.

The time-based checkpointing protocol of Neves & Fuchs assumes each node
owns a hardware clock that is *approximately* synchronized:

* immediately after a resynchronization, any two clocks differ by at
  most ``delta`` (the maximum initial deviation);
* between resynchronizations, each clock drifts at a bounded rate
  ``rho``, so after ``t`` seconds two clocks may have diverged by up to
  an additional ``2 * rho * t``.

:class:`DriftingClock` implements a piecewise-linear local clock
``local(t) = base_local + (1 + drift) * (t - base_true)`` whose ``drift``
is drawn uniformly from ``[-rho, +rho]`` and whose ``base_local`` is
re-anchored (with a bounded error) at every resynchronization.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional

from ..errors import ClockError
from .kernel import Simulator
from .rng import RngRegistry


@dataclasses.dataclass(frozen=True)
class ClockConfig:
    """Bounds of the clock model.

    Attributes
    ----------
    delta:
        Maximum deviation between any two clocks immediately after a
        resynchronization (the paper's ``delta``), in seconds.
    rho:
        Maximum drift rate (the paper's ``rho``), dimensionless
        (seconds of drift per second of true time).
    """

    delta: float = 0.01
    rho: float = 1e-5

    def __post_init__(self) -> None:
        if self.delta < 0 or self.rho < 0:
            raise ClockError(f"clock bounds must be non-negative: {self}")

    def max_skew(self, elapsed_since_resync: float) -> float:
        """Worst-case deviation between two clocks ``elapsed_since_resync``
        seconds after the last resynchronization: ``delta + 2*rho*t``."""
        return self.delta + 2.0 * self.rho * elapsed_since_resync


class DriftingClock:
    """A local clock with bounded drift, anchored to a simulator.

    Parameters
    ----------
    sim:
        The simulator supplying true time.
    config:
        Skew/drift bounds shared by every clock in the system.
    rng:
        Stream used to draw this clock's drift rate and per-resync
        anchoring error.
    name:
        Used in error messages and trace records.
    """

    def __init__(self, sim: Simulator, config: ClockConfig,
                 rng_registry: RngRegistry, name: str) -> None:
        self._sim = sim
        self.config = config
        self.name = name
        self._rng = rng_registry.stream(f"clock.{name}")
        # Drift is fixed for the lifetime of the clock (a property of the
        # oscillator, not of the synchronization).
        self._drift = self._rng.uniform(-config.rho, config.rho)
        self._base_true = sim.now
        # Initial anchoring error within +-delta/2 so any *pair* of
        # clocks differs by at most delta.
        self._base_local = sim.now + self._rng.uniform(-config.delta / 2.0,
                                                       config.delta / 2.0)
        self._last_resync_true = sim.now
        self._resync_listeners: List[Callable[["DriftingClock"], None]] = []

    # ------------------------------------------------------------------
    @property
    def drift(self) -> float:
        """This clock's (hidden) drift rate, in ``[-rho, +rho]``."""
        return self._drift

    def now(self) -> float:
        """Current local-clock reading."""
        return self.read(self._sim.now)

    def read(self, true_time: float) -> float:
        """Local-clock reading at true time ``true_time``."""
        return self._base_local + (1.0 + self._drift) * (true_time - self._base_true)

    def true_time_of(self, local_time: float) -> float:
        """Invert the clock: the true time at which this clock reads
        ``local_time`` (under the *current* anchoring)."""
        return self._base_true + (local_time - self._base_local) / (1.0 + self._drift)

    def elapsed_since_resync(self) -> float:
        """True-time seconds since the last resynchronization.

        The protocols use this (via :meth:`ClockConfig.max_skew`) to size
        blocking periods; a real implementation would use the local
        estimate, which differs by O(rho) — negligible at the bounds the
        paper considers.
        """
        return self._sim.now - self._last_resync_true

    # ------------------------------------------------------------------
    def resync(self, reference_local: Optional[float] = None) -> float:
        """Resynchronize this clock to the reference.

        ``reference_local`` defaults to the simulator's true time (an
        idealized external reference).  The clock is re-anchored so its
        reading equals the reference plus an error drawn uniformly from
        ``[-delta/2, +delta/2]``.  Returns the new reading.  Registered
        resync listeners (timer services) are notified so pending alarms
        can be re-converted to true time.
        """
        if reference_local is None:
            reference_local = self._sim.now
        error = self._rng.uniform(-self.config.delta / 2.0, self.config.delta / 2.0)
        self._base_true = self._sim.now
        self._base_local = reference_local + error
        self._last_resync_true = self._sim.now
        for listener in list(self._resync_listeners):
            listener(self)
        return self._base_local

    def on_resync(self, listener: Callable[["DriftingClock"], None]) -> None:
        """Register a callback invoked after every :meth:`resync`."""
        self._resync_listeners.append(listener)
