"""Structured trace recording.

Every interesting protocol action — checkpoint establishment, blocking
window boundaries, acceptance tests, message sends/deliveries,
recoveries, faults — is recorded as a :class:`TraceRecord`.  The
scenario reproductions of the paper's figures are assertions over these
traces, and the figure benches render them as timelines.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Iterable, List, Optional

from ..types import ProcessId


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """A single trace entry.

    ``category`` is a dotted topic such as ``"checkpoint.volatile"``,
    ``"checkpoint.stable"``, ``"blocking.start"``, ``"at.pass"``,
    ``"recovery.software"``, ``"fault.crash"``; ``data`` carries
    category-specific fields.
    """

    time: float
    category: str
    process: Optional[ProcessId]
    data: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def matches(self, category: Optional[str] = None,
                process: Optional[ProcessId] = None) -> bool:
        """Prefix-match on category, exact match on process."""
        if category is not None and not self.category.startswith(category):
            return False
        if process is not None and self.process != process:
            return False
        return True


class TraceRecorder:
    """Append-only trace sink with simple query helpers.

    ``categories`` restricts recording to categories matching any of
    the given prefixes — campaign runners that only assert over a
    narrow slice of the trace (say ``blocking.``) use it to skip the
    per-record allocation everywhere else.  Hot call sites should guard
    with :attr:`enabled` (or :meth:`wants` when their category may be
    filtered) before building keyword arguments, so a disabled recorder
    costs one attribute read and nothing else.
    """

    def __init__(self, enabled: bool = True,
                 categories: Optional[Iterable[str]] = None) -> None:
        self.enabled = enabled
        self._prefixes: Optional[tuple] = (tuple(categories)
                                           if categories is not None else None)
        self._records: List[TraceRecord] = []
        self._listeners: List[Callable[[TraceRecord], None]] = []

    def subscribe(self, listener: Callable[[TraceRecord], None]
                  ) -> Callable[[], None]:
        """Register a callback invoked synchronously for every *kept*
        record (after the enabled/category filter).  Returns an
        unsubscribe function.

        This is the hook the online auditor (:mod:`repro.audit`) uses
        to run invariant checks at protocol events while the simulation
        is still running; listeners may raise to fail fast.
        """
        self._listeners.append(listener)

        def unsubscribe() -> None:
            self.unsubscribe(listener)
        return unsubscribe

    def unsubscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        """Detach ``listener`` (a no-op if it is not subscribed).

        Long-lived subscribers (the online auditor) call this with the
        listener itself rather than holding the closure returned by
        :meth:`subscribe`, so they stay picklable for warm-start
        images."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def wants(self, category: str) -> bool:
        """Whether a record in ``category`` would actually be kept —
        the cheap pre-flight hot paths use to skip argument building."""
        if not self.enabled:
            return False
        prefixes = self._prefixes
        return prefixes is None or category.startswith(prefixes)

    def record(self, time: float, category: str,
               process: Optional[ProcessId] = None, **data: Any) -> None:
        """Append a record (no-op when disabled or filtered out)."""
        if not self.enabled:
            return
        prefixes = self._prefixes
        if prefixes is not None and not category.startswith(prefixes):
            return
        rec = TraceRecord(time=time, category=category,
                          process=process, data=data)
        self._records.append(rec)
        if self._listeners:
            for listener in list(self._listeners):
                listener(rec)

    # ------------------------------------------------------------------
    def records(self, category: Optional[str] = None,
                process: Optional[ProcessId] = None,
                since: Optional[float] = None,
                until: Optional[float] = None) -> List[TraceRecord]:
        """Filtered view of the trace (category is a prefix match)."""
        out = []
        for rec in self._records:
            if not rec.matches(category, process):
                continue
            if since is not None and rec.time < since:
                continue
            if until is not None and rec.time > until:
                continue
            out.append(rec)
        return out

    def last(self, category: Optional[str] = None,
             process: Optional[ProcessId] = None) -> Optional[TraceRecord]:
        """Most recent matching record, or ``None``."""
        for rec in reversed(self._records):
            if rec.matches(category, process):
                return rec
        return None

    def count(self, category: Optional[str] = None,
              process: Optional[ProcessId] = None) -> int:
        """Number of matching records."""
        return sum(1 for rec in self._records if rec.matches(category, process))

    def categories(self) -> List[str]:
        """Sorted distinct categories present in the trace."""
        return sorted({rec.category for rec in self._records})

    def timeline(self, categories: Iterable[str],
                 formatter: Optional[Callable[[TraceRecord], str]] = None) -> List[str]:
        """Human-readable timeline lines for the given category prefixes."""
        prefixes = tuple(categories)
        fmt = formatter or self._default_format
        lines = []
        for rec in self._records:
            if any(rec.category.startswith(p) for p in prefixes):
                lines.append(fmt(rec))
        return lines

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    @staticmethod
    def _default_format(rec: TraceRecord) -> str:
        who = f" {rec.process}" if rec.process else ""
        extras = " ".join(f"{k}={v}" for k, v in sorted(rec.data.items()))
        return f"t={rec.time:10.4f}{who:>8} {rec.category:24s} {extras}"
