"""The discrete-event simulation kernel.

:class:`Simulator` maintains a priority queue of :class:`~repro.sim.events.Event`
objects and a master *true time* clock.  Everything else in the library —
network delivery, drifting local clocks, checkpoint timers, fault
injection — is expressed as events scheduled on one simulator instance.

The kernel is intentionally small and synchronous: callbacks run to
completion in timestamp order, and the only sources of nondeterminism
are the seeded RNG streams in :mod:`repro.sim.rng`.

It is also the hot path under every experiment campaign, so the run
loop is written for throughput: heap operations and counters live in
locals, ``run(until=...)`` peeks at the heap head instead of popping
and re-pushing boundary-straddling events, a live-event counter makes
:meth:`pending_count` O(1), and cancelled events are compacted out of
the heap once they outnumber half of it (lazy deletion otherwise keeps
dead entries churning through every sift).  Event-object allocation can
be amortized with an opt-in :class:`~repro.sim.events.EventPool`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, List, Optional, Tuple

from ..errors import SchedulingError
from .events import Event, EventPool, EventPriority

#: One :meth:`Simulator.schedule_many` entry:
#: ``(time, callback, args, priority, label)``.
EventSpec = Tuple[float, Callable[..., Any], tuple, int, str]


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    pooling:
        Recycle fired event objects through an
        :class:`~repro.sim.events.EventPool` instead of allocating a
        fresh :class:`~repro.sim.events.Event` per schedule.  Off by
        default; see the pool's docstring for the handle-holding
        caveat.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule_at(1.5, fired.append, args=(1.5,))
    >>> _ = sim.schedule_at(0.5, fired.append, args=(0.5,))
    >>> sim.run()
    >>> fired
    [0.5, 1.5]
    """

    #: Compaction policy: rebuild the heap once cancelled entries are at
    #: least ``_COMPACT_MIN`` *and* at least half the heap.  The rebuild
    #: is O(n); amortized over the >= n/2 cancels that triggered it the
    #: cost per cancel is O(1), and it keeps sift depth bounded by the
    #: live-event population.
    _COMPACT_MIN = 64

    def __init__(self, pooling: bool = False) -> None:
        self._heap: List[Event] = []
        self._now: float = 0.0
        self._next_seq = 0
        self._cancelled_in_heap = 0
        self._running = False
        self._stopped = False
        self._pool: Optional[EventPool] = EventPool() if pooling else None
        #: Number of events executed so far (cancelled events excluded).
        self.events_executed: int = 0
        #: Diagnostics: how many heap compactions have run.
        self.compactions: int = 0

    # ------------------------------------------------------------------
    # time & introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """The current simulated true time, in seconds."""
        return self._now

    @property
    def pool(self) -> Optional[EventPool]:
        """The event free-list, when pooling is enabled."""
        return self._pool

    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1): the
        kernel maintains a cancelled-in-heap counter)."""
        return len(self._heap) - self._cancelled_in_heap

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` if drained."""
        self._drop_cancelled_head()
        return self._heap[0].time if self._heap else None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = EventPriority.ACTION,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute true time ``time``.

        Raises :class:`~repro.errors.SchedulingError` if ``time`` lies in
        the past (events *at* the current time are allowed — they run
        after the currently-executing event).
        """
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule event {label!r} at t={time} (now={self._now})"
            )
        seq = self._next_seq
        self._next_seq = seq + 1
        pool = self._pool
        if pool is not None:
            event = pool.acquire(time, int(priority), seq, callback, args, label)
        else:
            event = Event(time, int(priority), seq, callback, args, label)
        event.sim = self
        event.in_heap = True
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(
        self,
        delay: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = EventPriority.ACTION,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds of true time."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay} for event {label!r}")
        return self.schedule_at(self._now + delay, callback, args=args,
                                priority=priority, label=label)

    def schedule_many(self, specs: Iterable[EventSpec]) -> List[Event]:
        """Schedule a batch of events in one call.

        ``specs`` entries are ``(time, callback, args, priority, label)``
        tuples; sequence numbers are assigned in iteration order, so the
        batch ties exactly as the equivalent :meth:`schedule_at` loop
        would.  Large batches (at least a quarter of the heap) are
        appended and re-heapified in one O(n) pass instead of paying a
        sift per event — this is the bulk path
        :class:`~repro.sim.timers.TimerService` uses to re-anchor every
        pending alarm after a clock resynchronization.
        """
        now = self._now
        seq = self._next_seq
        events: List[Event] = []
        for time, callback, args, priority, label in specs:
            if time < now:
                raise SchedulingError(
                    f"cannot schedule event {label!r} at t={time} (now={now})")
            event = Event(time, int(priority), seq, callback, args, label)
            event.sim = self
            event.in_heap = True
            seq += 1
            events.append(event)
        self._next_seq = seq
        heap = self._heap
        if len(events) * 4 >= len(heap):
            heap.extend(events)
            heapq.heapify(heap)
        else:
            push = heapq.heappush
            for event in events:
                push(heap, event)
        return events

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events in order until the queue drains.

        Parameters
        ----------
        until:
            If given, stop once the next event's timestamp exceeds
            ``until`` and advance ``now`` to exactly ``until``.  The
            too-late head event is *peeked*, never popped, so a
            boundary-straddling run leaves the heap untouched.
        max_events:
            Safety valve for tests: stop after this many events.
        """
        if self._running:
            raise SchedulingError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        executed = 0
        heap = self._heap
        pop = heapq.heappop
        pool = self._pool
        try:
            while heap:
                if self._stopped:
                    break
                head = heap[0]
                if head.cancelled:
                    pop(heap)
                    head.in_heap = False
                    self._cancelled_in_heap -= 1
                    if pool is not None:
                        pool.release(head)
                    continue
                if until is not None and head.time > until:
                    break
                pop(heap)
                head.in_heap = False
                if head.time > self._now:
                    self._now = head.time
                head.callback(*head.args)
                self.events_executed += 1
                executed += 1
                if pool is not None:
                    pool.release(head)
                if max_events is not None and executed >= max_events:
                    break
            if until is not None and self._now < until and not self._stopped:
                self._now = until
        finally:
            self._running = False

    def step(self) -> Optional[Event]:
        """Execute exactly one live event and return it (``None`` if drained).

        Stepped events are never recycled through the pool — the caller
        receives the handle.
        """
        self._drop_cancelled_head()
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        event.in_heap = False
        if event.time > self._now:
            self._now = event.time
        event.fire()
        self.events_executed += 1
        return event

    def stop(self) -> None:
        """Request that a currently-executing :meth:`run` stop after the
        current event finishes.  Queued events remain queued."""
        self._stopped = True

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        """Called by :meth:`Event.cancel` for an event still in the heap."""
        count = self._cancelled_in_heap + 1
        self._cancelled_in_heap = count
        if count >= self._COMPACT_MIN and count * 2 >= len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Physically remove cancelled events and re-heapify (in place,
        so aliases of the heap list held by a running loop stay valid)."""
        heap = self._heap
        pool = self._pool
        if pool is not None:
            for event in heap:
                if event.cancelled:
                    event.in_heap = False
                    pool.release(event)
        else:
            for event in heap:
                if event.cancelled:
                    event.in_heap = False
        heap[:] = [event for event in heap if not event.cancelled]
        heapq.heapify(heap)
        self._cancelled_in_heap = 0
        self.compactions += 1

    def _drop_cancelled_head(self) -> None:
        heap = self._heap
        pool = self._pool
        while heap and heap[0].cancelled:
            event = heapq.heappop(heap)
            event.in_heap = False
            self._cancelled_in_heap -= 1
            if pool is not None:
                pool.release(event)
