"""The discrete-event simulation kernel.

:class:`Simulator` maintains a priority queue of :class:`~repro.sim.events.Event`
objects and a master *true time* clock.  Everything else in the library —
network delivery, drifting local clocks, checkpoint timers, fault
injection — is expressed as events scheduled on one simulator instance.

The kernel is intentionally small and synchronous: callbacks run to
completion in timestamp order, and the only sources of nondeterminism
are the seeded RNG streams in :mod:`repro.sim.rng`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

from ..errors import SchedulingError
from .events import Event, EventPriority, make_event


class Simulator:
    """A deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule_at(1.5, fired.append, args=(1.5,))
    >>> _ = sim.schedule_at(0.5, fired.append, args=(0.5,))
    >>> sim.run()
    >>> fired
    [0.5, 1.5]
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._now: float = 0.0
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        #: Number of events executed so far (cancelled events excluded).
        self.events_executed: int = 0

    # ------------------------------------------------------------------
    # time & introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """The current simulated true time, in seconds."""
        return self._now

    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for ev in self._heap if not ev.cancelled)

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` if drained."""
        self._drop_cancelled_head()
        return self._heap[0].time if self._heap else None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = EventPriority.ACTION,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute true time ``time``.

        Raises :class:`~repro.errors.SchedulingError` if ``time`` lies in
        the past (events *at* the current time are allowed — they run
        after the currently-executing event).
        """
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule event {label!r} at t={time} (now={self._now})"
            )
        event = make_event(time, callback, args=args, priority=priority,
                           label=label, seq=next(self._seq))
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(
        self,
        delay: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = EventPriority.ACTION,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds of true time."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay} for event {label!r}")
        return self.schedule_at(self._now + delay, callback, args=args,
                                priority=priority, label=label)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events in order until the queue drains.

        Parameters
        ----------
        until:
            If given, stop once the next event's timestamp exceeds
            ``until`` and advance ``now`` to exactly ``until``.
        max_events:
            Safety valve for tests: stop after this many events.
        """
        if self._running:
            raise SchedulingError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while self._heap:
                if self._stopped:
                    break
                event = heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                if until is not None and event.time > until:
                    heapq.heappush(self._heap, event)
                    break
                self._now = max(self._now, event.time)
                event.fire()
                self.events_executed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
            if until is not None and self._now < until and not self._stopped:
                self._now = until
        finally:
            self._running = False

    def step(self) -> Optional[Event]:
        """Execute exactly one live event and return it (``None`` if drained)."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        self._now = max(self._now, event.time)
        event.fire()
        self.events_executed += 1
        return event

    def stop(self) -> None:
        """Request that a currently-executing :meth:`run` stop after the
        current event finishes.  Queued events remain queued."""
        self._stopped = True

    # ------------------------------------------------------------------
    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
