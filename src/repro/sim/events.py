"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is a callback scheduled at a point in simulated *true*
time.  Events are totally ordered by ``(time, priority, seq)`` so that
simulations are deterministic: ties in time are broken first by an
explicit priority and then by insertion order.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
from typing import Any, Callable, Optional

_seq_counter = itertools.count()


class EventPriority(enum.IntEnum):
    """Tie-break priority for events scheduled at the same instant.

    Lower values run first.  The distinct levels make interleavings at
    identical timestamps deterministic and intuitive:

    * ``DELIVERY`` — network deliveries happen before timers so a message
      arriving "exactly" at a timer expiry is processed first (matching
      the paper's figures, where message receipt at the blocking-period
      boundary counts as inside the period).
    * ``TIMER`` — local-clock alarms (checkpointing timers).
    * ``ACTION`` — workload/application actions.
    * ``CONTROL`` — fault injection, observers, end-of-run hooks.
    """

    DELIVERY = 0
    TIMER = 1
    ACTION = 2
    CONTROL = 3


@dataclasses.dataclass(frozen=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, priority, seq)``.  The ``cancelled`` flag
    lives in a one-element list so a frozen dataclass can still be
    lazily cancelled without removing it from the heap.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[..., Any]
    args: tuple
    label: str = ""
    _cancelled: list = dataclasses.field(default_factory=lambda: [False], compare=False)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (other.time, other.priority, other.seq)

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called on this event."""
        return self._cancelled[0]

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        self._cancelled[0] = True

    def fire(self) -> None:
        """Invoke the callback (the kernel calls this; tests may too)."""
        self.callback(*self.args)


def make_event(
    time: float,
    callback: Callable[..., Any],
    args: tuple = (),
    priority: int = EventPriority.ACTION,
    label: str = "",
    seq: Optional[int] = None,
) -> Event:
    """Construct an :class:`Event` with a fresh global sequence number.

    ``seq`` may be pinned explicitly by tests that need to control
    tie-break order.
    """
    if seq is None:
        seq = next(_seq_counter)
    return Event(time=time, priority=priority, seq=seq, callback=callback, args=args, label=label)
