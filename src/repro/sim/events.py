"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is a callback scheduled at a point in simulated *true*
time.  Events are totally ordered by ``(time, priority, seq)`` so that
simulations are deterministic: ties in time are broken first by an
explicit priority and then by insertion order.

This module is the innermost hot path of every experiment campaign —
millions of events are created, compared, and fired per run — so
:class:`Event` is a ``__slots__`` class with a plain mutable
``cancelled`` flag and a comparison that touches fields directly
instead of building tuples.  An optional :class:`EventPool` lets the
kernel recycle fired event objects instead of allocating fresh ones.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, List, Optional


class EventPriority(enum.IntEnum):
    """Tie-break priority for events scheduled at the same instant.

    Lower values run first.  The distinct levels make interleavings at
    identical timestamps deterministic and intuitive:

    * ``DELIVERY`` — network deliveries happen before timers so a message
      arriving "exactly" at a timer expiry is processed first (matching
      the paper's figures, where message receipt at the blocking-period
      boundary counts as inside the period).
    * ``TIMER`` — local-clock alarms (checkpointing timers).
    * ``ACTION`` — workload/application actions.
    * ``CONTROL`` — fault injection, observers, end-of-run hooks.
    """

    DELIVERY = 0
    TIMER = 1
    ACTION = 2
    CONTROL = 3


class Event:
    """A scheduled callback.

    Events compare by ``(time, priority, seq)``; ``cancelled`` is a
    plain mutable flag the kernel checks when the event reaches the
    head of the heap.  ``sim`` back-references the owning
    :class:`~repro.sim.kernel.Simulator` (``None`` for free-standing
    events) so :meth:`cancel` can keep the kernel's live-event
    accounting exact; ``in_heap`` tracks whether the event currently
    sits in that simulator's queue.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "label",
                 "cancelled", "sim", "in_heap")

    def __init__(self, time: float, priority: int, seq: int,
                 callback: Callable[..., Any], args: tuple = (),
                 label: str = "") -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.label = label
        self.cancelled = False
        self.sim = None
        self.in_heap = False

    def __lt__(self, other: "Event") -> bool:
        # Field-direct comparison: no tuple construction on the heap's
        # hottest operation.
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return (f"Event(t={self.time!r}, priority={self.priority!r}, "
                f"seq={self.seq!r}, label={self.label!r}{state})")

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self.sim
        if sim is not None and self.in_heap:
            sim._note_cancel()

    def fire(self) -> None:
        """Invoke the callback (the kernel calls this; tests may too)."""
        self.callback(*self.args)


class EventSequencer:
    """A monotonic source of event sequence numbers.

    Each :class:`~repro.sim.kernel.Simulator` owns one, so tie-break
    order never leaks between simulator instances in the same Python
    process.  Code that builds events without a simulator (tests,
    tooling) can construct its own sequencer for the same isolation.
    """

    __slots__ = ("_next",)

    def __init__(self, start: int = 0) -> None:
        self._next = start

    def __call__(self) -> int:
        value = self._next
        self._next = value + 1
        return value

    def reset(self, start: int = 0) -> None:
        """Rewind the sequence (fresh-run determinism for tooling)."""
        self._next = start


#: Fallback sequencer for :func:`make_event` calls that supply neither
#: ``seq`` nor ``sequencer``.  Simulators never draw from it (each owns
#: an :class:`EventSequencer`), so it only orders free-standing events;
#: :func:`reset_event_sequence` rewinds it between independent runs.
_fallback_sequencer = EventSequencer()


def reset_event_sequence(start: int = 0) -> None:
    """Reset the module fallback sequence used by :func:`make_event`."""
    _fallback_sequencer.reset(start)


def make_event(
    time: float,
    callback: Callable[..., Any],
    args: tuple = (),
    priority: int = EventPriority.ACTION,
    label: str = "",
    seq: Optional[int] = None,
    sequencer: Optional[EventSequencer] = None,
) -> Event:
    """Construct a free-standing :class:`Event`.

    ``seq`` may be pinned explicitly by tests that need to control
    tie-break order; ``sequencer`` scopes automatic numbering to the
    caller (a fresh :class:`EventSequencer` per logical run).  With
    neither, a module-level fallback sequencer is used — reset it with
    :func:`reset_event_sequence` when cross-run isolation matters.
    """
    if seq is None:
        seq = (sequencer if sequencer is not None else _fallback_sequencer)()
    return Event(time, int(priority), seq, callback, args, label)


class EventPool:
    """A free-list of fired :class:`Event` objects.

    The kernel releases events here after they fire (or after a
    cancelled event is popped) and reacquires them for new schedules,
    skipping object allocation on the hot path.  Released events drop
    their callback/args references immediately so the pool never keeps
    closures or messages alive.

    Pooling changes object identity across schedules, so it is opt-in
    (``Simulator(pooling=True)``): a caller holding a *dead* handle —
    the event fired, or was cancelled and has since left the heap —
    must not call :meth:`Event.cancel` on it (the object may already
    describe a different scheduled event).  All in-tree callers null or
    guard their handles (e.g. ``Alarm.cancel`` checks both its ``fired``
    and ``cancelled`` flags); the kernel bench asserts campaign samples
    are bit-for-bit identical pooling on/off.
    """

    __slots__ = ("_free", "max_size", "reused", "released")

    def __init__(self, max_size: int = 4096) -> None:
        self._free: List[Event] = []
        self.max_size = max_size
        #: Diagnostics: how many acquisitions were served from the pool.
        self.reused = 0
        #: Diagnostics: how many events were returned to the pool.
        self.released = 0

    def __len__(self) -> int:
        return len(self._free)

    def acquire(self, time: float, priority: int, seq: int,
                callback: Callable[..., Any], args: tuple,
                label: str) -> Event:
        """A ready-to-push event: recycled if available, else fresh."""
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.priority = priority
            event.seq = seq
            event.callback = callback
            event.args = args
            event.label = label
            event.cancelled = False
            self.reused += 1
            return event
        return Event(time, priority, seq, callback, args, label)

    def release(self, event: Event) -> None:
        """Return a dead (fired or cancelled-and-popped) event."""
        free = self._free
        if len(free) >= self.max_size:
            return
        event.callback = None
        event.args = ()
        event.label = ""
        event.sim = None
        self.released += 1
        free.append(event)

    # ------------------------------------------------------------------
    # cross-run recycling (flock group execution)
    # ------------------------------------------------------------------
    def adopt(self, donor: "EventPool") -> None:
        """Take over another pool's free list (and its diagnostics).

        Flock groups run forks back-to-back in one process; adopting
        the previous fork's free list keeps the hot event objects
        cache-resident instead of re-allocating them per fork.  Safe
        because released events are dead by contract — they reference
        no callback, args, or simulator.
        """
        take = self.max_size - len(self._free)
        if take > 0:
            self._free.extend(donor._free[:take])
        donor._free.clear()
        self.reused += donor.reused
        self.released += donor.released

    def harvest(self, simulator) -> None:
        """Adopt the free list of a finished simulator's pool, if any.

        Convenience for the flock runner: called on each completed
        fork's ``system.sim`` before the next fork starts."""
        pool = getattr(simulator, "_pool", None)
        if pool is not None and pool is not self:
            self.adopt(pool)
