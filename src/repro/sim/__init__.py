"""Discrete-event distributed-system substrate.

This package contains everything "below" the fault-tolerance protocols:
the event kernel, seeded randomness, drifting clocks and timers, the
network with bounded delays and acknowledgements, crashable nodes with
volatile/stable storage, the process base class, structured tracing, and
statistics collectors.
"""

from .clock import ClockConfig, DriftingClock
from .events import Event, EventPriority
from .kernel import Simulator
from .monitor import CounterSet, RunningStat, TimeWeightedValue, summarize
from .network import Endpoint, Network, NetworkConfig, Transmission
from .node import Node
from .process import SimProcess
from .rng import RngRegistry, derive_seed
from .storage import StableStore, VolatileStore
from .timers import Alarm, TimerService
from .trace import TraceRecord, TraceRecorder

__all__ = [
    "Alarm",
    "ClockConfig",
    "CounterSet",
    "DriftingClock",
    "Endpoint",
    "Event",
    "EventPriority",
    "Network",
    "NetworkConfig",
    "Node",
    "RngRegistry",
    "RunningStat",
    "SimProcess",
    "Simulator",
    "StableStore",
    "TimeWeightedValue",
    "TimerService",
    "TraceRecord",
    "TraceRecorder",
    "Transmission",
    "VolatileStore",
    "derive_seed",
    "summarize",
]
