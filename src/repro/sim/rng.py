"""Seeded random-number streams.

Every stochastic component of a simulation (network delay, workload
inter-arrival times, clock drift draws, fault injection) pulls from its
own named stream derived from a single master seed.  This gives two
properties the experiments rely on:

* **Reproducibility** — the same master seed always produces the same
  run, regardless of how many components exist.
* **Variance isolation** — changing one parameter (say, the internal
  message rate) does not perturb the random draws of unrelated
  components, which sharpens paired comparisons such as
  E[D_co] vs E[D_wt] in Figure 7.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream name.

    Uses SHA-256 so the mapping is stable across Python versions and
    platforms (unlike ``hash()``).
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """A factory of named, independently-seeded :class:`random.Random` streams.

    >>> reg = RngRegistry(master_seed=42)
    >>> a = reg.stream("network")
    >>> b = reg.stream("workload.P2")
    >>> a is reg.stream("network")
    True
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream called ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.master_seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """Return a new registry whose master seed is derived from this
        registry's seed and ``name`` — used to give each replication of
        an experiment campaign its own independent universe."""
        return RngRegistry(derive_seed(self.master_seed, f"fork:{name}"))


class BatchedUniform:
    """Amortized ``uniform(lo, hi)`` draws from one dedicated stream.

    Hot consumers (the network draws one delivery delay per message and
    one more per acknowledgement) pay attribute lookups and method
    dispatch per :meth:`random.Random.uniform` call.  This helper
    prefetches a block of draws with a single bound ``random()`` method
    in a tight comprehension and hands them out one at a time.

    The produced value sequence is **bit-for-bit** the sequence the
    equivalent ``rng.uniform(lo, hi)`` call sequence would produce:
    CPython's ``uniform(a, b)`` is exactly ``a + (b - a) * random()``,
    one underlying draw per value, and this helper computes the same
    expression with the same precomputed ``b - a``.  That equivalence —
    and therefore campaign determinism — only holds while the wrapped
    stream has no other consumer, which is the registry's per-name
    stream contract anyway.

    A degenerate range (``lo == hi``) consumes nothing from the stream,
    matching the short-circuit the network always had.
    """

    __slots__ = ("_random", "_lo", "_span", "_block", "_buf", "_idx")

    def __init__(self, rng: random.Random, lo: float, hi: float,
                 block: int = 256) -> None:
        if hi < lo:
            raise ValueError(f"invalid uniform range [{lo}, {hi}]")
        self._random = rng.random
        self._lo = lo
        self._span = hi - lo
        self._block = block
        self._buf: List[float] = []
        self._idx = 0

    def next(self) -> float:
        """The next draw (refilling the block buffer as needed)."""
        if self._span == 0.0:
            return self._lo
        idx = self._idx
        buf = self._buf
        if idx >= len(buf):
            r, lo, span = self._random, self._lo, self._span
            buf = [lo + span * r() for _ in range(self._block)]
            self._buf = buf
            idx = 0
        self._idx = idx + 1
        return buf[idx]
