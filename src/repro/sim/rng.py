"""Seeded random-number streams.

Every stochastic component of a simulation (network delay, workload
inter-arrival times, clock drift draws, fault injection) pulls from its
own named stream derived from a single master seed.  This gives two
properties the experiments rely on:

* **Reproducibility** — the same master seed always produces the same
  run, regardless of how many components exist.
* **Variance isolation** — changing one parameter (say, the internal
  message rate) does not perturb the random draws of unrelated
  components, which sharpens paired comparisons such as
  E[D_co] vs E[D_wt] in Figure 7.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream name.

    Uses SHA-256 so the mapping is stable across Python versions and
    platforms (unlike ``hash()``).
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """A factory of named, independently-seeded :class:`random.Random` streams.

    >>> reg = RngRegistry(master_seed=42)
    >>> a = reg.stream("network")
    >>> b = reg.stream("workload.P2")
    >>> a is reg.stream("network")
    True
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream called ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.master_seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """Return a new registry whose master seed is derived from this
        registry's seed and ``name`` — used to give each replication of
        an experiment campaign its own independent universe."""
        return RngRegistry(derive_seed(self.master_seed, f"fork:{name}"))
