"""The simulated network: bounded delivery delay, acknowledgements, and
in-flight introspection.

The TB protocols' correctness argument rests on two delay bounds — the
minimum and maximum message-delivery delay ``t_min`` and ``t_max`` —
which size the blocking periods (paper Table 1).  The network draws each
delivery delay uniformly from ``[t_min, t_max]`` (other distributions
can be plugged in) and automatically acknowledges delivered application
messages, feeding the senders' :class:`~repro.messages.sequence.AckTracker`.

Messages addressed to a crashed node are dropped (never acknowledged),
so the sender's unacknowledged set — saved into its next stable
checkpoint — is exactly the set hardware recovery must re-send.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from ..errors import ConfigurationError, NetworkError
from ..messages.message import DEVICE, Message
from ..types import MessageKind, ProcessId
from .events import EventPriority
from .kernel import Simulator
from .rng import BatchedUniform, RngRegistry


@dataclasses.dataclass(frozen=True)
class NetworkConfig:
    """Delay bounds of the network.

    ``t_min``/``t_max`` bound application and notification messages;
    acknowledgements use the same bounds (the protocols only need acks
    to be eventually delivered, not bounded, but bounded acks keep the
    simulation finite-horizon).
    """

    t_min: float = 0.002
    t_max: float = 0.02
    fifo: bool = True

    def __post_init__(self) -> None:
        if self.t_min < 0 or self.t_max < self.t_min:
            raise ConfigurationError(f"invalid delay bounds: {self}")


def _always_alive() -> bool:
    """Default endpoint liveness (module-level so endpoints pickle)."""
    return True


@dataclasses.dataclass
class Endpoint:
    """A registered message consumer.

    ``deliver`` returns whether the message was accepted *and read*:
    the network acknowledges such deliveries.  A ``False`` return means
    the message was rejected (stale incarnation, crashed receiver) or
    merely buffered (a TB blocking period): no acknowledgement is
    generated — acknowledgements certify *reads*, which is what the TB
    recoverability argument needs (a buffered in-transit message must
    remain in the sender's unacknowledged set until actually consumed).
    A receiver that buffers acknowledges later via :meth:`Network.ack`.
    A ``None`` return counts as accepted, so plain callbacks work
    unchanged.
    """

    process_id: ProcessId
    deliver: Callable[[Message], Optional[bool]]
    on_ack: Optional[Callable[[int], None]] = None
    is_alive: Callable[[], bool] = _always_alive


@dataclasses.dataclass
class Transmission:
    """Bookkeeping for a message currently on the wire."""

    message: Message
    sent_at: float
    arrives_at: float
    delivered: bool = False
    dropped: bool = False


class Network:
    """Point-to-point message transport between registered endpoints."""

    def __init__(self, sim: Simulator, config: NetworkConfig,
                 rng_registry: RngRegistry) -> None:
        self._sim = sim
        self.config = config
        # One delay draw per message plus one per acknowledgement makes
        # this the hottest RNG consumer; the batched helper prefetches
        # blocks from the dedicated stream without changing the drawn
        # value sequence (see BatchedUniform).
        self._delay = BatchedUniform(rng_registry.stream("network"),
                                     config.t_min, config.t_max)
        self._endpoints: Dict[ProcessId, Endpoint] = {}
        self._transmissions: List[Transmission] = []
        self._last_arrival: Dict[tuple, float] = {}
        #: Everything delivered to the DEVICE pseudo-endpoint, in order.
        self.device_log: List[Message] = []
        #: Monitoring counters.
        self.sent_count: int = 0
        self.delivered_count: int = 0
        self.dropped_count: int = 0

    # ------------------------------------------------------------------
    def register(self, endpoint: Endpoint) -> None:
        """Attach a process to the network."""
        if endpoint.process_id in self._endpoints:
            raise NetworkError(f"endpoint {endpoint.process_id} already registered")
        self._endpoints[endpoint.process_id] = endpoint

    def endpoint(self, process_id: ProcessId) -> Endpoint:
        """Look up a registered endpoint."""
        try:
            return self._endpoints[process_id]
        except KeyError:
            raise NetworkError(f"unknown endpoint {process_id}") from None

    # ------------------------------------------------------------------
    def send(self, message: Message) -> Transmission:
        """Put ``message`` on the wire.

        Delivery happens after a delay drawn from ``[t_min, t_max]``.
        External messages to :data:`~repro.messages.message.DEVICE` are
        appended to :attr:`device_log` at delivery time.  Application and
        notification messages to live endpoints are acknowledged back to
        the sender after a further network delay.
        """
        message.send_time = self._sim.now
        if message.born_at == 0.0:
            message.born_at = self._sim.now
        arrives_at = self._sim.now + self._draw_delay()
        if self.config.fifo:
            # FIFO channels (TCP-like): a later send on the same
            # (sender, receiver) pair never overtakes an earlier one.
            # The MDCD notification semantics rely on this: a process's
            # "passed AT" broadcast must not be overtaken by messages it
            # sends afterwards.
            pair = (message.sender, message.receiver)
            floor = self._last_arrival.get(pair)
            if floor is not None and arrives_at <= floor:
                arrives_at = floor + 1e-9
            self._last_arrival[pair] = arrives_at
        tx = Transmission(message=message, sent_at=self._sim.now,
                          arrives_at=arrives_at)
        self._transmissions.append(tx)
        self.sent_count += 1
        self._sim.schedule_at(tx.arrives_at, self._deliver, args=(tx,),
                              priority=EventPriority.DELIVERY,
                              label=f"deliver:{message.describe()}")
        return tx

    def ack(self, message: Message) -> None:
        """Explicitly acknowledge ``message`` (used by receivers that
        buffered a delivery during a blocking period and have now read
        it)."""
        self._send_ack(message)

    def in_flight(self) -> List[Message]:
        """Messages currently on the wire (sent, not yet delivered or
        dropped) — the checkers use this to find in-transit messages."""
        return [tx.message for tx in self._transmissions
                if not tx.delivered and not tx.dropped]

    # ------------------------------------------------------------------
    def _draw_delay(self) -> float:
        return self._delay.next()

    def _deliver(self, tx: Transmission) -> None:
        message = tx.message
        if message.receiver == DEVICE:
            tx.delivered = True
            self.delivered_count += 1
            self.device_log.append(message)
            return
        endpoint = self._endpoints.get(message.receiver)
        if endpoint is None or not endpoint.is_alive():
            # Receiver unknown or crashed: the message is lost and never
            # acknowledged; the sender's AckTracker keeps it for re-send.
            tx.dropped = True
            self.dropped_count += 1
            return
        tx.delivered = True
        self.delivered_count += 1
        accepted = endpoint.deliver(message)
        if accepted is not False and message.kind != MessageKind.ACK:
            self._send_ack(message)

    def _send_ack(self, original: Message) -> None:
        sender_ep = self._endpoints.get(original.sender)
        if sender_ep is None or sender_ep.on_ack is None:
            return
        delay = self._draw_delay()
        self._sim.schedule_after(
            delay, self._deliver_ack, args=(original.sender, original.msg_id),
            priority=EventPriority.DELIVERY, label=f"ack:{original.msg_id}")

    def _deliver_ack(self, sender: ProcessId, msg_id: int) -> None:
        endpoint = self._endpoints.get(sender)
        if endpoint is None or not endpoint.is_alive() or endpoint.on_ack is None:
            return
        endpoint.on_ack(msg_id)
