"""Simulated computing nodes.

A :class:`Node` is a crashable host: it owns a drifting clock, a timer
service, volatile storage (erased by a crash) and stable storage
(persistent).  Processes register with a node; a crash notifies them so
protocol engines can mark themselves down, and a restart triggers the
hardware-recovery path.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..errors import NodeCrashedError
from ..types import NodeId
from .clock import ClockConfig, DriftingClock
from .kernel import Simulator
from .rng import RngRegistry
from .storage import StableStore, VolatileStore
from .timers import TimerService


class Node:
    """A hardware host for simulated processes.

    Parameters
    ----------
    node_id:
        Unique name.
    sim, clock_config, rng_registry:
        Substrate plumbing.
    stable_store:
        Optionally shared between nodes (a common disk array); by default
        each node gets its own store.  Stable contents survive crashes
        either way.
    volatile_codec, stable_codec:
        Snapshot codec ids (or instances) the node's stores encode
        checkpoints with; default pickle.
    stable_latency_per_kib:
        Size-proportional component of the stable write latency
        (seconds per KiB); ``0.0`` keeps the fixed-latency model.
    """

    def __init__(self, node_id: NodeId, sim: Simulator, clock_config: ClockConfig,
                 rng_registry: RngRegistry,
                 stable_store: Optional[StableStore] = None,
                 stable_history: int = 2,
                 volatile_codec=None, stable_codec=None,
                 stable_latency_per_kib: float = 0.0) -> None:
        self.node_id = node_id
        self.sim = sim
        self.clock = DriftingClock(sim, clock_config, rng_registry, name=str(node_id))
        self.timers = TimerService(sim, self.clock)
        self.volatile = VolatileStore(codec=volatile_codec)
        self.stable = stable_store if stable_store is not None \
            else StableStore(history=stable_history, codec=stable_codec,
                            latency_per_kib=stable_latency_per_kib)
        self.crashed = False
        #: Number of crashes suffered, for monitoring.
        self.crash_count: int = 0
        self._crash_listeners: List[Callable[["Node"], None]] = []
        self._restart_listeners: List[Callable[["Node"], None]] = []

    # ------------------------------------------------------------------
    def ensure_up(self) -> None:
        """Raise :class:`~repro.errors.NodeCrashedError` if crashed."""
        if self.crashed:
            raise NodeCrashedError(f"node {self.node_id} is crashed")

    def on_crash(self, listener: Callable[["Node"], None]) -> None:
        """Register a callback invoked when the node crashes."""
        self._crash_listeners.append(listener)

    def on_restart(self, listener: Callable[["Node"], None]) -> None:
        """Register a callback invoked when the node restarts."""
        self._restart_listeners.append(listener)

    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Fail-stop the node: erase volatile storage, cancel local
        timers, and notify listeners.  Idempotent."""
        if self.crashed:
            return
        self.crashed = True
        self.crash_count += 1
        self.volatile.erase()
        self.timers.cancel_all()
        for listener in list(self._crash_listeners):
            listener(self)

    def restart(self) -> None:
        """Bring the node back up.

        The local clock is resynchronized on restart (a rebooted node
        re-joins clock synchronization before resuming the protocols);
        listeners then run the hardware-recovery procedure.
        """
        if not self.crashed:
            return
        self.crashed = False
        self.clock.resync()
        for listener in list(self._restart_listeners):
            listener(self)
