"""Volatile (RAM) and stable (disk) checkpoint stores.

The MDCD protocol keeps exactly one volatile checkpoint per process
("a process keeps only its most recent checkpoint in volatile storage",
paper footnote 1); a node crash wipes volatile storage.  Stable storage
survives crashes and retains a short history of checkpoint epochs so
that hardware recovery can fall back to the last *complete* global line
even if a crash interrupts an establishment.

Each store owns the :class:`~repro.snapshot.codec.Codec` its
checkpoints are encoded with (threaded down from the system configs)
and keeps byte accounting behind the snapshot pipeline: totals, a
per-checkpoint-kind breakdown, and a per-section breakdown — the raw
material of the overhead report's "where do checkpoint bytes go" table.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..checkpoint import Checkpoint
from ..errors import StorageError
from ..snapshot import Codec, get_codec
from ..types import ProcessId


class _AccountingMixin:
    """Shared byte accounting for checkpoint stores."""

    def _init_accounting(self, codec: Union[str, Codec, None]) -> None:
        #: The codec checkpoints written to this store are encoded with.
        self.codec: Codec = get_codec(codec)
        #: Number of checkpoints saved over the store's lifetime.
        self.saves: int = 0
        #: Total accounted bytes written (a performance-cost proxy).
        self.bytes_written: int = 0
        #: Accounted bytes per checkpoint kind (Type-1/Type-2/...).
        self.bytes_by_kind: Dict[str, int] = {}
        #: Accounted bytes per snapshot section (app/mdcd/journals/...).
        self.bytes_by_section: Dict[str, int] = {}

    def _account(self, checkpoint: Checkpoint) -> None:
        self.saves += 1
        self.bytes_written += checkpoint.size_bytes
        kind = checkpoint.kind.value
        self.bytes_by_kind[kind] = (
            self.bytes_by_kind.get(kind, 0) + checkpoint.size_bytes)
        for section, nbytes in checkpoint.section_sizes().items():
            self.bytes_by_section[section] = (
                self.bytes_by_section.get(section, 0) + nbytes)


class VolatileStore(_AccountingMixin):
    """Per-node RAM checkpoint store — most-recent-only, crash-erasable."""

    def __init__(self, codec: Union[str, Codec, None] = None) -> None:
        self._latest: Dict[ProcessId, Checkpoint] = {}
        self._init_accounting(codec)

    def save(self, checkpoint: Checkpoint) -> None:
        """Replace the owner's volatile checkpoint with ``checkpoint``."""
        self._latest[checkpoint.process_id] = checkpoint
        self._account(checkpoint)

    def load(self, process_id: ProcessId) -> Checkpoint:
        """The most recent volatile checkpoint of ``process_id``.

        Raises :class:`~repro.errors.StorageError` if there is none
        (e.g. after a crash erased it).
        """
        try:
            return self._latest[process_id]
        except KeyError:
            raise StorageError(f"no volatile checkpoint for {process_id}") from None

    def peek(self, process_id: ProcessId) -> Optional[Checkpoint]:
        """Like :meth:`load` but returns ``None`` instead of raising."""
        return self._latest.get(process_id)

    def erase(self) -> None:
        """Wipe the store — models the loss of RAM on a node crash."""
        self._latest.clear()


class StableStore(_AccountingMixin):
    """Per-node disk checkpoint store with bounded epoch history.

    ``write_latency`` models the fixed wall-clock cost of writing a
    snapshot; the TB protocols' blocking periods overlap this write
    (paper Section 2.2), so the protocol engines read the attribute
    when sequencing establishment completion.  ``latency_per_kib``
    optionally makes the write cost size-proportional — it defaults to
    ``0.0`` so existing experiments keep the seed's fixed-latency
    behaviour; :meth:`write_latency_for` folds both together.
    """

    def __init__(self, history: int = 2, write_latency: float = 0.05,
                 codec: Union[str, Codec, None] = None,
                 latency_per_kib: float = 0.0) -> None:
        if history < 1:
            raise StorageError("stable store must retain at least one checkpoint")
        if latency_per_kib < 0:
            raise StorageError("latency_per_kib must be non-negative")
        self._history = history
        self._chain: Dict[ProcessId, List[Checkpoint]] = {}
        self.write_latency = write_latency
        self.latency_per_kib = latency_per_kib
        self._init_accounting(codec)

    def write_latency_for(self, checkpoint: Optional[Checkpoint]) -> float:
        """The modelled wall-clock cost of writing ``checkpoint``:
        the fixed floor plus the size-proportional component (if
        enabled).  ``None`` — size unknown yet — prices at the floor."""
        latency = self.write_latency
        if checkpoint is not None and self.latency_per_kib > 0.0:
            latency += self.latency_per_kib * (checkpoint.size_bytes / 1024.0)
        return latency

    def save(self, checkpoint: Checkpoint) -> None:
        """Append a completed stable checkpoint, trimming old epochs."""
        chain = self._chain.setdefault(checkpoint.process_id, [])
        chain.append(checkpoint)
        del chain[:-self._history]
        self._account(checkpoint)

    def latest(self, process_id: ProcessId) -> Checkpoint:
        """Most recent completed stable checkpoint of ``process_id``."""
        chain = self._chain.get(process_id)
        if not chain:
            raise StorageError(f"no stable checkpoint for {process_id}")
        return chain[-1]

    def peek(self, process_id: ProcessId) -> Optional[Checkpoint]:
        """Like :meth:`latest` but returns ``None`` instead of raising."""
        chain = self._chain.get(process_id)
        return chain[-1] if chain else None

    def at_epoch(self, process_id: ProcessId, epoch: int) -> Optional[Checkpoint]:
        """The retained checkpoint of ``process_id`` for ``epoch``, if any."""
        for ckpt in reversed(self._chain.get(process_id, [])):
            if ckpt.epoch == epoch:
                return ckpt
        return None

    def discard_after_epoch(self, process_id: ProcessId, epoch: int) -> int:
        """Drop retained checkpoints with an epoch *beyond* ``epoch``.

        Hardware recovery calls this when rolling a process back to the
        recovery line: checkpoints of later epochs belong to the
        abandoned timeline, and leaving them retained would let a
        subsequent recovery (or a global-state audit) assemble a line
        mixing pre- and post-rollback states.  Returns the number of
        checkpoints discarded.
        """
        chain = self._chain.get(process_id)
        if not chain:
            return 0
        kept = [c for c in chain
                if c.epoch is None or c.epoch <= epoch]
        discarded = len(chain) - len(kept)
        if discarded:
            self._chain[process_id] = kept
        return discarded

    def epochs(self, process_id: ProcessId) -> List[int]:
        """Retained epoch numbers for ``process_id`` (ascending)."""
        return [c.epoch for c in self._chain.get(process_id, []) if c.epoch is not None]

    def history(self, process_id: ProcessId) -> List[Checkpoint]:
        """All retained checkpoints of ``process_id`` (oldest first)."""
        return list(self._chain.get(process_id, []))
