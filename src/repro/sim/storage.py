"""Volatile (RAM) and stable (disk) checkpoint stores.

The MDCD protocol keeps exactly one volatile checkpoint per process
("a process keeps only its most recent checkpoint in volatile storage",
paper footnote 1); a node crash wipes volatile storage.  Stable storage
survives crashes and retains a short history of checkpoint epochs so
that hardware recovery can fall back to the last *complete* global line
even if a crash interrupts an establishment.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..checkpoint import Checkpoint
from ..errors import StorageError
from ..types import ProcessId


class VolatileStore:
    """Per-node RAM checkpoint store — most-recent-only, crash-erasable."""

    def __init__(self) -> None:
        self._latest: Dict[ProcessId, Checkpoint] = {}
        #: Number of checkpoints saved over the store's lifetime.
        self.saves: int = 0
        #: Total pickled bytes written (a performance-cost proxy).
        self.bytes_written: int = 0

    def save(self, checkpoint: Checkpoint) -> None:
        """Replace the owner's volatile checkpoint with ``checkpoint``."""
        self._latest[checkpoint.process_id] = checkpoint
        self.saves += 1
        self.bytes_written += checkpoint.size_bytes

    def load(self, process_id: ProcessId) -> Checkpoint:
        """The most recent volatile checkpoint of ``process_id``.

        Raises :class:`~repro.errors.StorageError` if there is none
        (e.g. after a crash erased it).
        """
        try:
            return self._latest[process_id]
        except KeyError:
            raise StorageError(f"no volatile checkpoint for {process_id}") from None

    def peek(self, process_id: ProcessId) -> Optional[Checkpoint]:
        """Like :meth:`load` but returns ``None`` instead of raising."""
        return self._latest.get(process_id)

    def erase(self) -> None:
        """Wipe the store — models the loss of RAM on a node crash."""
        self._latest.clear()


class StableStore:
    """Per-node disk checkpoint store with bounded epoch history.

    ``write_latency`` models the wall-clock cost of writing a snapshot;
    the TB protocols' blocking periods overlap this write (paper
    Section 2.2), so the protocol engines read the attribute when
    sequencing establishment completion.
    """

    def __init__(self, history: int = 2, write_latency: float = 0.05) -> None:
        if history < 1:
            raise StorageError("stable store must retain at least one checkpoint")
        self._history = history
        self._chain: Dict[ProcessId, List[Checkpoint]] = {}
        self.write_latency = write_latency
        self.saves: int = 0
        #: Total pickled bytes written (a performance-cost proxy).
        self.bytes_written: int = 0

    def save(self, checkpoint: Checkpoint) -> None:
        """Append a completed stable checkpoint, trimming old epochs."""
        chain = self._chain.setdefault(checkpoint.process_id, [])
        chain.append(checkpoint)
        del chain[:-self._history]
        self.saves += 1
        self.bytes_written += checkpoint.size_bytes

    def latest(self, process_id: ProcessId) -> Checkpoint:
        """Most recent completed stable checkpoint of ``process_id``."""
        chain = self._chain.get(process_id)
        if not chain:
            raise StorageError(f"no stable checkpoint for {process_id}")
        return chain[-1]

    def peek(self, process_id: ProcessId) -> Optional[Checkpoint]:
        """Like :meth:`latest` but returns ``None`` instead of raising."""
        chain = self._chain.get(process_id)
        return chain[-1] if chain else None

    def at_epoch(self, process_id: ProcessId, epoch: int) -> Optional[Checkpoint]:
        """The retained checkpoint of ``process_id`` for ``epoch``, if any."""
        for ckpt in reversed(self._chain.get(process_id, [])):
            if ckpt.epoch == epoch:
                return ckpt
        return None

    def epochs(self, process_id: ProcessId) -> List[int]:
        """Retained epoch numbers for ``process_id`` (ascending)."""
        return [c.epoch for c in self._chain.get(process_id, []) if c.epoch is not None]

    def history(self, process_id: ProcessId) -> List[Checkpoint]:
        """All retained checkpoints of ``process_id`` (oldest first)."""
        return list(self._chain.get(process_id, []))
