"""repro — a reproduction of *"Synergistic Coordination between Software
and Hardware Fault Tolerance Techniques"* (Tai, Tso, Alkalai, Chau,
Sanders; DSN 2001).

The library implements, on a deterministic discrete-event simulator of a
three-node distributed system:

* the **MDCD** (message-driven confidence-driven) software fault
  tolerance protocol, original and modified variants;
* the **TB** (time-based) checkpointing protocol of Neves & Fuchs,
  original and adapted variants;
* the paper's **coordinated scheme** (modified MDCD + adapted TB) and
  its baselines (write-through, naive combination);
* executable checkers for (validity-concerned) global-state consistency
  and recoverability, rollback-distance instrumentation, and a
  closed-form rollback model.

Quick start::

    from repro import Scheme, SystemConfig, build_system

    system = build_system(SystemConfig(scheme=Scheme.COORDINATED, seed=1))
    system.run(until=2_000.0)
    print(system.peer.counters.as_dict())

See ``examples/`` for complete scenarios and ``benchmarks/`` for the
reproductions of every table and figure in the paper's evaluation.
"""

from ._version import __version__
from .app.acceptance import AcceptanceTestConfig
from .app.faults import HardwareFaultPlan, SoftwareFaultPlan
from .app.workload import WorkloadConfig
from .checkpoint import Checkpoint
from .coordination.scheme import Scheme, System, SystemConfig, build_system
from .errors import (
    ConfigurationError,
    InvariantViolation,
    ProtocolError,
    RecoveryError,
    ReproError,
    SimulationError,
)
from .host import FtProcess, IncarnationCounter, ProcessSnapshot
from .sim.clock import ClockConfig
from .sim.network import NetworkConfig
from .tb.blocking import TbConfig
from .types import CheckpointKind, MessageKind, RecoveryAction, Role, StableContent

__all__ = [
    "AcceptanceTestConfig",
    "Checkpoint",
    "CheckpointKind",
    "ClockConfig",
    "ConfigurationError",
    "FtProcess",
    "HardwareFaultPlan",
    "IncarnationCounter",
    "InvariantViolation",
    "MessageKind",
    "NetworkConfig",
    "ProcessSnapshot",
    "ProtocolError",
    "RecoveryAction",
    "RecoveryError",
    "ReproError",
    "Role",
    "Scheme",
    "SimulationError",
    "SoftwareFaultPlan",
    "StableContent",
    "System",
    "SystemConfig",
    "TbConfig",
    "WorkloadConfig",
    "__version__",
    "build_system",
]
