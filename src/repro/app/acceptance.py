"""Acceptance tests (AT).

MDCD validates only *external* messages, and only those sent from a
potentially contaminated state — external messages are commands/data
that simple reasonableness checks can validate, unlike intermediate
results (paper Section 2.1).  A successful AT certifies not just the
message but, under the paper's key assumption, the sender's state and
every message sent or received before the test.

The simulation models an AT as a detector over the ground-truth
``corrupt`` flag with configurable *coverage* (probability a corrupt
message is caught) and *false-alarm* probability.  The paper's analysis
assumes a perfect AT; the defaults match that, and the ablation benches
sweep coverage to show how the guarantees degrade.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..errors import ConfigurationError
from ..sim.rng import RngRegistry
from .component import Payload


@dataclasses.dataclass(frozen=True)
class AcceptanceTestConfig:
    """Detector quality.

    ``coverage`` — P(AT fails | message corrupt); ``false_alarm`` —
    P(AT fails | message correct).
    """

    coverage: float = 1.0
    false_alarm: float = 0.0

    def __post_init__(self) -> None:
        for name in ("coverage", "false_alarm"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(f"{name} must be a probability, got {p}")


class AcceptanceTest:
    """A stateful AT instance (owns an RNG stream and counters)."""

    def __init__(self, config: AcceptanceTestConfig,
                 rng_registry: RngRegistry, name: str) -> None:
        self.config = config
        self.name = name
        self._rng = rng_registry.stream(f"at.{name}")
        #: Monitoring counters.
        self.runs = 0
        self.passes = 0
        self.detections = 0
        self.misses = 0
        self.false_alarms = 0

    def test(self, payload: Payload) -> bool:
        """Run the AT; ``True`` means the message passed (is accepted)."""
        self.runs += 1
        if payload.corrupt:
            detected = self._bernoulli(self.config.coverage)
            if detected:
                self.detections += 1
                return False
            self.misses += 1
            self.passes += 1
            return True
        if self._bernoulli(self.config.false_alarm):
            self.false_alarms += 1
            return False
        self.passes += 1
        return True

    def _bernoulli(self, p: float) -> bool:
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        return self._rng.random() < p
