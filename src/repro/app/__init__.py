"""Application layer: deterministic components, versions, workload,
acceptance tests and fault injection."""

from .acceptance import AcceptanceTest, AcceptanceTestConfig
from .component import ApplicationComponent, AppState, Payload
from .faults import (
    HardwareFaultInjector,
    HardwareFaultPlan,
    SoftwareFaultInjector,
    SoftwareFaultPlan,
    poisson_crash_plan,
)
from .versions import HighConfidenceVersion, LowConfidenceVersion, SoftwareVersion
from .workload import (
    Action,
    ActionKind,
    WorkloadConfig,
    WorkloadDriver,
    generate_actions,
)

__all__ = [
    "AcceptanceTest",
    "AcceptanceTestConfig",
    "Action",
    "ActionKind",
    "ApplicationComponent",
    "AppState",
    "HardwareFaultInjector",
    "HardwareFaultPlan",
    "HighConfidenceVersion",
    "LowConfidenceVersion",
    "Payload",
    "SoftwareFaultInjector",
    "SoftwareFaultPlan",
    "SoftwareVersion",
    "WorkloadConfig",
    "WorkloadDriver",
    "generate_actions",
    "poisson_crash_plan",
]
