"""Software versions: where design faults live.

The paper's system model has one application component with *two
versions*: a low-confidence version (newly upgraded, or the
better-performance/less-reliable primary of a DRB/NSCP pair) run by the
active process ``P1_act``, and a high-confidence version run by the
shadow ``P1_sdw``.  The second component ``P2`` is high-confidence.

A design fault is modelled as a latent defect in the low-confidence
version that *activates* at some point (see
:class:`~repro.app.faults.SoftwareFaultInjector`); once active, every
payload the version computes is perturbed and ground-truth ``corrupt``,
and computing from it leaves the state contaminated.  The defect is in
the *code*, not the state: rolling state back does not remove it —
which is exactly why MDCD recovery switches to the shadow's version
rather than re-running the active's.
"""

from __future__ import annotations

from .component import AppState, Payload, _mix


class SoftwareVersion:
    """Base class: a correct (high-confidence) version."""

    def __init__(self, name: str) -> None:
        self.name = name

    def compute(self, state: AppState, stimulus: int) -> Payload:
        """Produce an output payload from ``state`` and ``stimulus``.

        The produced payload inherits the state's ground-truth
        corruption: computing from a contaminated state yields
        contaminated outputs (the paper's propagation assumption).
        """
        value = self._function(state, stimulus)
        return Payload(value=value, corrupt=state.corrupt)

    @staticmethod
    def _function(state: AppState, stimulus: int) -> int:
        return _mix(state.value ^ stimulus)


class HighConfidenceVersion(SoftwareVersion):
    """The trusted version (shadow process / component 2)."""


class LowConfidenceVersion(SoftwareVersion):
    """The guarded version: computes correctly until its latent defect
    activates, then produces perturbed, corrupt payloads and contaminates
    the state it computes from.

    ``fault_active`` is toggled by the fault injector.  ``fault_count``
    counts faulty computations, for monitoring.
    """

    def __init__(self, name: str = "low-confidence") -> None:
        super().__init__(name)
        self.fault_active = False
        self.fault_count = 0

    def compute(self, state: AppState, stimulus: int) -> Payload:
        """Correct until the defect activates; then perturb the result,
        mark it corrupt, and contaminate the computing state."""
        if not self.fault_active:
            return super().compute(state, stimulus)
        self.fault_count += 1
        # The defect: an off-by-one-ish perturbation of the correct
        # result.  Computing it also contaminates the local state (an
        # erroneous computation writes erroneous intermediate values).
        correct = self._function(state, stimulus)
        state.corrupt = True
        return Payload(value=correct + 1, corrupt=True)
