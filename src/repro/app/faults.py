"""Fault injection.

Two fault classes drive every experiment in the paper:

* **Software design faults** — a latent defect in the low-confidence
  version that activates at an injected time (and may deactivate again,
  modelling an input-dependent bug).  Activation flips
  :attr:`~repro.app.versions.LowConfidenceVersion.fault_active`; the
  defect lives in code, so checkpoint rollback does not clear it.
* **Hardware faults** — fail-stop node crashes with a repair delay,
  after which the node restarts and the hardware-recovery procedure
  runs.

Injectors are plain schedulers over the simulation kernel; campaigns
configure them from seeded RNG streams so fault times are reproducible.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from ..errors import ConfigurationError
from ..sim.events import EventPriority
from ..sim.kernel import Simulator
from ..sim.node import Node
from ..sim.trace import TraceRecorder
from ..types import FaultKind
from .versions import LowConfidenceVersion


@dataclasses.dataclass(frozen=True)
class SoftwareFaultPlan:
    """When the low-confidence version's defect manifests.

    ``activate_at`` — true time of activation; ``deactivate_at`` — if
    set, the defect stops manifesting then (a window of bad inputs).
    ``component`` — which guarded component's low-confidence version is
    defective (1 in the paper's single-component shape).
    """

    activate_at: float
    deactivate_at: Optional[float] = None
    component: int = 1

    def __post_init__(self) -> None:
        if self.activate_at < 0:
            raise ConfigurationError(f"activate_at must be >= 0: {self}")
        if self.deactivate_at is not None and self.deactivate_at <= self.activate_at:
            raise ConfigurationError(f"deactivate_at must follow activate_at: {self}")


class SoftwareFaultInjector:
    """Schedules (de)activation of a low-confidence version's defect."""

    def __init__(self, sim: Simulator, version: LowConfidenceVersion,
                 plan: SoftwareFaultPlan,
                 trace: Optional[TraceRecorder] = None) -> None:
        self.sim = sim
        self.version = version
        self.plan = plan
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.activated = False

    def arm(self) -> None:
        """Schedule the planned activation (and deactivation)."""
        self.sim.schedule_at(self.plan.activate_at, self._activate,
                             priority=EventPriority.CONTROL,
                             label="fault:software:activate")
        if self.plan.deactivate_at is not None:
            self.sim.schedule_at(self.plan.deactivate_at, self._deactivate,
                                 priority=EventPriority.CONTROL,
                                 label="fault:software:deactivate")

    def _activate(self) -> None:
        self.version.fault_active = True
        self.activated = True
        self.trace.record(self.sim.now, "fault.software.activate", None,
                          kind=FaultKind.SOFTWARE_DESIGN.value,
                          version=self.version.name)

    def _deactivate(self) -> None:
        self.version.fault_active = False
        self.trace.record(self.sim.now, "fault.software.deactivate", None,
                          kind=FaultKind.SOFTWARE_DESIGN.value,
                          version=self.version.name)


@dataclasses.dataclass(frozen=True)
class HardwareFaultPlan:
    """A node crash at ``crash_at`` repaired after ``repair_time``."""

    node_id: str
    crash_at: float
    repair_time: float = 1.0

    def __post_init__(self) -> None:
        if self.crash_at < 0 or self.repair_time < 0:
            raise ConfigurationError(f"invalid hardware fault plan: {self}")


class HardwareFaultInjector:
    """Schedules fail-stop crashes and restarts for one node."""

    def __init__(self, sim: Simulator, node: Node, plan: HardwareFaultPlan,
                 trace: Optional[TraceRecorder] = None) -> None:
        if plan.node_id != str(node.node_id):
            raise ConfigurationError(
                f"plan targets {plan.node_id!r} but node is {node.node_id!r}")
        self.sim = sim
        self.node = node
        self.plan = plan
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)

    def arm(self) -> None:
        """Schedule the crash and the subsequent restart."""
        self.sim.schedule_at(self.plan.crash_at, self._crash,
                             priority=EventPriority.CONTROL,
                             label=f"fault:crash:{self.plan.node_id}")

    def _crash(self) -> None:
        self.trace.record(self.sim.now, "fault.crash", None,
                          kind=FaultKind.HARDWARE_CRASH.value,
                          node=str(self.node.node_id))
        self.node.crash()
        self.sim.schedule_after(self.plan.repair_time, self._restart,
                                priority=EventPriority.CONTROL,
                                label=f"fault:restart:{self.plan.node_id}")

    def _restart(self) -> None:
        self.trace.record(self.sim.now, "fault.restart", None,
                          node=str(self.node.node_id))
        self.node.restart()


def poisson_crash_plan(rate: float, horizon: float, node_ids: List[str],
                       rng, repair_time: float = 1.0) -> List[HardwareFaultPlan]:
    """Draw a Poisson crash schedule over ``horizon`` across ``node_ids``.

    Used by campaign experiments that average rollback distance over
    many hardware-fault occurrences.
    """
    if rate < 0:
        raise ConfigurationError(f"crash rate must be non-negative: {rate}")
    plans: List[HardwareFaultPlan] = []
    if rate == 0:
        return plans
    t = rng.expovariate(rate)
    while t < horizon:
        node_id = rng.choice(node_ids)
        plans.append(HardwareFaultPlan(node_id=node_id, crash_at=t,
                                       repair_time=repair_time))
        t += rng.expovariate(rate)
    return plans
