"""Deterministic, replayable application components.

The MDCD protocol treats the application as a black box that consumes
and produces *internal* messages (intermediate results exchanged with
the other component) and *external* messages (commands/data sent to
devices).  What matters to the protocols is only (a) the timing of those
messages and (b) how corruption propagates: an erroneous process state
yields erroneous outgoing messages, and receiving an erroneous message
contaminates the receiver's state (the paper's key assumption,
Section 2.1).

:class:`AppState` implements the smallest state machine with exactly
those properties.  Its ``value`` accumulator is updated *commutatively*
(addition of per-input contributions), so the active and shadow replicas
of component 1 converge to the same state given the same multiset of
inputs even though message arrivals interleave differently on their two
nodes.  The hidden ``corrupt`` flag is the ground truth the analysis
package audits protocol views against; protocol code never reads it.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional


@dataclasses.dataclass
class Payload:
    """An application payload: a number plus ground-truth corruption."""

    value: int
    corrupt: bool = False


@dataclasses.dataclass
class AppState:
    """Checkpointable application state.

    Attributes
    ----------
    value:
        The commutative accumulator (the "computation result").
    inputs_applied:
        How many internal payloads have been folded in.
    steps_applied:
        How many local computation steps have run.
    corrupt:
        Ground truth: whether an activated design fault has affected
        this state (directly or via a received corrupt payload).
    """

    #: Snapshot section this state is encoded under (see
    #: :mod:`repro.snapshot.sections`).
    snapshot_section = "app"

    value: int = 0
    inputs_applied: int = 0
    steps_applied: int = 0
    corrupt: bool = False

    def apply_payload(self, payload: Payload) -> None:
        """Fold a received internal payload into the state."""
        self.value += payload.value
        self.inputs_applied += 1
        if payload.corrupt:
            self.corrupt = True

    def apply_step(self, stimulus: int) -> None:
        """Run one local computation step."""
        self.value += _mix(stimulus)
        self.steps_applied += 1


def _mix(x: int) -> int:
    """A cheap deterministic integer hash, so values look 'computed'."""
    x = (x ^ (x >> 13)) * 0x5BD1E995
    return (x ^ (x >> 15)) & 0x7FFFFFFF


class ApplicationComponent:
    """One application software component bound to a version.

    The component produces payloads through its
    :class:`~repro.app.versions.SoftwareVersion`, which is where design
    faults live: a faulty version perturbs produced values and marks them
    (ground truth) corrupt.

    Parameters
    ----------
    name:
        For traces.
    version:
        The software version computing this component's outputs.
    """

    def __init__(self, name: str, version: "SoftwareVersionLike") -> None:
        self.name = name
        self.version = version
        self.state = AppState()

    # ------------------------------------------------------------------
    def receive_internal(self, payload: Payload) -> None:
        """Consume an internal message's payload."""
        self.state.apply_payload(payload)

    def local_step(self, stimulus: int) -> None:
        """Execute one local computation step."""
        self.state.apply_step(stimulus)

    def produce_internal(self, stimulus: int) -> Payload:
        """Compute an internal (intermediate-result) payload."""
        return self.version.compute(self.state, stimulus)

    def produce_external(self, stimulus: int) -> Payload:
        """Compute an external (command/data) payload.

        External payloads inherit the state's ground-truth corruption —
        this is what makes the paper's key assumption hold: a successful
        acceptance test on an external message certifies the sender's
        state (see :mod:`repro.app.acceptance`).
        """
        return self.version.compute(self.state, stimulus)

    # ------------------------------------------------------------------
    # checkpointing support
    # ------------------------------------------------------------------
    def snapshot(self) -> AppState:
        """A copy of the state (the host pickles the whole process
        snapshot; this copy keeps the live state unaliased)."""
        return dataclasses.replace(self.state)

    def restore(self, state: AppState) -> None:
        """Replace the live state with a (restored) copy."""
        self.state = dataclasses.replace(state)

    def describe(self) -> Dict[str, Any]:
        """Summary for traces and reports."""
        return {
            "name": self.name,
            "value": self.state.value,
            "corrupt": self.state.corrupt,
            "inputs": self.state.inputs_applied,
            "steps": self.state.steps_applied,
            "version": self.version.name,
        }


class SoftwareVersionLike:
    """Structural interface for versions (see :mod:`repro.app.versions`)."""

    name: str

    def compute(self, state: AppState, stimulus: int) -> Payload:  # pragma: no cover
        """Produce an output payload from the state and stimulus."""
        raise NotImplementedError
