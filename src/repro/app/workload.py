"""Workload generation and replayable action drivers.

Each process executes a pre-generated, deterministic *action stream*:
local computation steps, internal message sends, and external message
sends, with exponential inter-arrival gaps (independent Poisson streams
per action kind, the standard model for the paper's message-rate
parameters).

The stream is generated once per component and *replayed* after a
rollback: the driver keeps a cursor (part of the checkpointable process
state), and recovery rewinds the cursor and re-executes the undone
actions with their original inter-action gaps — modelling a process that
recomputes the rolled-back work.  The active and shadow replicas of
component 1 share one stream, so they perform identical computations on
identical inputs (paper Section 2.1).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Optional

from ..errors import ConfigurationError
from ..sim.events import EventPriority
from ..sim.kernel import Simulator
from ..sim.rng import RngRegistry


class ActionKind(enum.Enum):
    """What a workload action does."""

    LOCAL_STEP = "step"
    SEND_INTERNAL = "internal"
    SEND_EXTERNAL = "external"


@dataclasses.dataclass(frozen=True)
class Action:
    """One scheduled application action.

    ``gap`` is the time since the previous action (re-used verbatim when
    re-executing after a rollback); ``stimulus`` is the deterministic
    input to the computation.
    """

    index: int
    kind: ActionKind
    gap: float
    stimulus: int


@dataclasses.dataclass(frozen=True)
class WorkloadConfig:
    """Poisson rates (events per second) for one component's actions.

    The paper's Figure 7 sweeps the *internal message rate*; external
    messages (which trigger acceptance tests) are much rarer, and local
    steps model computation that sends nothing.
    """

    internal_rate: float = 0.05
    external_rate: float = 0.002
    step_rate: float = 0.1
    horizon: float = 10_000.0

    def __post_init__(self) -> None:
        if self.internal_rate < 0 or self.external_rate < 0 or self.step_rate < 0:
            raise ConfigurationError(f"rates must be non-negative: {self}")
        if self.internal_rate == 0 and self.external_rate == 0 and self.step_rate == 0:
            raise ConfigurationError("workload must have at least one positive rate")
        if self.horizon <= 0:
            raise ConfigurationError(f"horizon must be positive: {self}")


def generate_actions(config: WorkloadConfig, rng_registry: RngRegistry,
                     stream_name: str) -> List[Action]:
    """Generate a component's action stream over ``config.horizon``.

    Superposes the three Poisson streams by drawing each kind's next
    arrival and merging in time order; gaps are stored relative to the
    previous action in the merged stream.
    """
    rng = rng_registry.stream(f"workload.{stream_name}")
    arrivals = []
    for kind, rate in ((ActionKind.LOCAL_STEP, config.step_rate),
                       (ActionKind.SEND_INTERNAL, config.internal_rate),
                       (ActionKind.SEND_EXTERNAL, config.external_rate)):
        if rate <= 0:
            continue
        t = rng.expovariate(rate)
        while t < config.horizon:
            arrivals.append((t, kind))
            t += rng.expovariate(rate)
    arrivals.sort(key=lambda pair: pair[0])
    actions: List[Action] = []
    prev = 0.0
    for index, (t, kind) in enumerate(arrivals):
        actions.append(Action(index=index, kind=kind, gap=t - prev,
                              stimulus=rng.randrange(1 << 30)))
        prev = t
    return actions


class WorkloadDriver:
    """Replays an action stream into a target process.

    The target must expose ``perform_action(action)`` and be able to ask
    the driver for its cursor (for checkpoints) via :attr:`cursor`.
    Exactly one simulator event is outstanding at a time, so a rollback
    can cleanly cancel and re-arm the stream from the restored cursor.
    """

    def __init__(self, sim: Simulator, actions: List[Action], name: str) -> None:
        self._sim = sim
        self._actions = actions
        self.name = name
        self.cursor = 0
        self._target = None
        self._pending_event = None
        self._paused = False
        self._generation = 0
        #: Number of actions executed, counting re-executions.
        self.executed = 0

    # ------------------------------------------------------------------
    def start(self, target) -> None:
        """Bind the target process and schedule the first action."""
        self._target = target
        self._schedule_next()

    def pause(self) -> None:
        """Stop issuing actions (crash, or a deposed active process)."""
        self._paused = True
        self._cancel_pending()

    def resume(self) -> None:
        """Resume from the current cursor (post-restart/takeover)."""
        if not self._paused:
            return
        self._paused = False
        self._schedule_next()

    def rewind_to(self, cursor: int) -> None:
        """Roll the stream back to ``cursor`` and re-execute from there.

        Called by recovery after restoring a checkpoint whose snapshot
        recorded ``cursor``.  The next action fires after its original
        gap, modelling recomputation at the original pace.
        """
        self._generation += 1
        self._cancel_pending()
        self.cursor = cursor
        if not self._paused:
            self._schedule_next()

    @property
    def paused(self) -> bool:
        """Whether the driver is currently paused."""
        return self._paused

    @property
    def exhausted(self) -> bool:
        """Whether the stream has run out of actions."""
        return self.cursor >= len(self._actions)

    def remaining(self) -> int:
        """Number of actions not yet executed at the current cursor."""
        return max(0, len(self._actions) - self.cursor)

    # ------------------------------------------------------------------
    def _schedule_next(self) -> None:
        if self._paused or self._target is None or self.exhausted:
            return
        action = self._actions[self.cursor]
        self._pending_event = self._sim.schedule_after(
            action.gap, self._fire, args=(action,),
            priority=EventPriority.ACTION, label=f"action:{self.name}:{action.index}")

    def _fire(self, action: Action) -> None:
        self._pending_event = None
        if self._paused:
            return
        # The cursor still points at this action while it runs, so a
        # checkpoint taken *during* the action (the protocols checkpoint
        # immediately before sending) records the pre-action position:
        # rolling back to it re-executes the action, regenerating and
        # re-sending the message — recovery by recomputation.
        generation = self._generation
        self.executed += 1
        self._target.perform_action(action)
        if generation != self._generation or self._paused:
            # Recovery rewound (or a takeover paused) this driver while
            # the action ran; the rewind already re-armed the stream.
            return
        self.cursor = action.index + 1
        self._schedule_next()

    def _cancel_pending(self) -> None:
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
