"""Warm-start execution: full-system images and prefix-resume.

Audit campaigns and shrink searches replay enormous shared prefixes:
every schedule of one ``(config, seed, overrides)`` prefix is identical
to the fault-free reference run up to its first armed fault.  This
package captures the reference *once* as a series of full-system
images — simulator event heap, RNG stream positions, clocks, timers,
nodes, stores, processes, trace, armed hooks, the online auditor, and
the global message-id allocator — and resumes every schedule from the
newest image strictly before its divergence point.  Resumed runs are
bit-for-bit identical to cold runs (same findings, same canonical
trace digests); warm-start is purely a wall-clock optimization.

Entry points: ``run_audit(..., warmstart=True)`` /
``repro audit --warmstart`` for campaigns, :class:`WarmRunner` for
custom drivers, and ``repro bench-warmstart`` for the speedup /
equivalence gate.
"""

from .engine import (
    MIN_GROUP,
    WarmRunner,
    build_image_set,
    capture_times,
    divergence_time,
    share_schedule_seeds,
)
from .image import SystemImage, capture, resume
from .store import ImageStore, PrefixKey

__all__ = [
    "MIN_GROUP",
    "ImageStore",
    "PrefixKey",
    "SystemImage",
    "WarmRunner",
    "build_image_set",
    "capture",
    "capture_times",
    "divergence_time",
    "resume",
    "share_schedule_seeds",
]
