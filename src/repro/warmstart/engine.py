"""Prefix-resume execution: run the shared prefix once, fork futures.

Every schedule of an audit campaign (and every candidate of a shrink
search) is a *divergence* from the fault-free reference run of its
``(config, system seed, timing overrides)`` prefix: up to the first
armed fault, the runs are event-for-event identical.  The engine
exploits that:

1. :func:`build_image_set` runs the reference once, capturing
   :class:`~repro.warmstart.image.SystemImage` snapshots at planned
   instants (:func:`capture_times` — a coarse grid plus points just
   ahead of the reference timeline's sensitive instants, the places
   boundary schedules pin faults).  Capturing stops at the reference's
   first own finding — an image past it would bake the finding into
   every resumed future, which a cold run would have reported earlier.
2. :meth:`WarmRunner.audit_schedule` computes a schedule's
   :func:`divergence_time`, thaws the newest image *strictly before*
   it, arms the schedule's faults on the copy, and runs forward —
   skipping the shared prefix entirely.  Schedules with no usable
   image (different prefix, divergence before the first capture, or a
   singleton group not worth a reference run) fall back to the cold
   path, so warm execution is always a pure optimization: identical
   findings, traces, and shrink results, just less wall-clock.

Determinism fine print: fault injectors schedule at ``CONTROL``
priority, the lowest, so arming them late (at resume time, with higher
sequence numbers than the cold run's build-time arming) can only
reorder events against other ``CONTROL`` events at the *exact* same
float instant — and every resume happens strictly before the first
fault time.  The bench's digest cross-checks and the golden-trace suite
assert the bit-for-bit contract on every configuration we ship.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..errors import AuditViolation
from ..sim.rng import derive_seed
from .image import SystemImage, capture, resume
from .store import ImageStore, PrefixKey

#: How far ahead of a sensitive instant a pre-point capture lands —
#: comfortably more than the generator's ``BOUNDARY_EPS`` (0.25), so
#: "just before" fault times still find an image before them.
CAPTURE_LEAD = 0.75

#: Minimum spacing between captures; closer candidates are merged.
MIN_CAPTURE_GAP = 2.0

#: Hard cap on images per prefix (memory ~100 KiB each).
MAX_IMAGES = 48

#: Build a prefix's image set only when at least this many schedules
#: will share it (a reference run + captures must amortize).
MIN_GROUP = 2


def divergence_time(schedule) -> float:
    """When ``schedule`` first departs from its fault-free reference.

    The earliest armed fault instant; ``inf`` for a fault-free schedule
    (it *is* the reference — any image works).  Seed and timing
    overrides are part of the prefix key, not of this time: a schedule
    only ever resumes from images of its own ``(config, seed,
    overrides)`` prefix.
    """
    times = [spec.activate_at for spec in schedule.software]
    times += [spec.crash_at for spec in schedule.crashes]
    return min(times) if times else float("inf")


def capture_times(config, timeline=None) -> List[float]:
    """Planned capture instants for one prefix of ``config``.

    A uniform grid (bounding how much any resume must re-simulate)
    plus a point :data:`CAPTURE_LEAD` ahead of each sensitive instant
    of the reference ``timeline`` — commits, blocking starts,
    acceptance-test passes, resynchronizations — since those are
    exactly where boundary schedules aim their faults.  Thinned to
    :data:`MIN_CAPTURE_GAP` spacing and capped at :data:`MAX_IMAGES`.
    """
    stop = config.horizon - 1.0
    step = max(config.tb_interval / 2.0, config.horizon / float(MAX_IMAGES))
    candidates = set()
    t = step
    while t < stop:
        candidates.add(round(t, 6))
        t += step
    if timeline is not None:
        sensitive: List[float] = list(timeline.commit_times())
        sensitive += [start for start, _end in timeline.blocking]
        sensitive += list(timeline.at_passes)
        sensitive += list(timeline.resyncs)
        for t in sensitive:
            pre = t - CAPTURE_LEAD
            if 0.0 < pre < stop:
                candidates.add(round(pre, 6))
    times: List[float] = []
    for t in sorted(candidates):
        if not times or t - times[-1] >= MIN_CAPTURE_GAP:
            times.append(t)
    if len(times) > MAX_IMAGES:
        stride = len(times) / float(MAX_IMAGES)
        times = [times[int(i * stride)] for i in range(MAX_IMAGES)]
    return times


def share_schedule_seeds(config, schedules) -> List:
    """Rewrite every schedule onto one shared system seed.

    Audit campaigns default to a distinct seed per schedule (maximum
    workload diversity), which makes every schedule its own prefix and
    leaves nothing for warm-start to share.  A warm campaign trades
    that diversity for prefix reuse: all schedules run against the
    system seeded by this one derived value.  Schedules carry their
    seed, so artifacts and replays stay self-describing.
    """
    import dataclasses
    seed = derive_seed(config.seed, "audit:shared") % (2 ** 31)
    return [dataclasses.replace(sched, system_seed=seed)
            for sched in schedules]


def build_image_set(config, seed: int,
                    overrides: Tuple[Tuple[str, float], ...] = (),
                    times: Optional[List[float]] = None,
                    timeline=None, codec: str = "pickle"
                    ) -> List[SystemImage]:
    """Run one fault-free reference and capture its image set.

    The probe carries the prefix's timing overrides (and the campaign's
    mutation, planted by ``build_audit_system``) so resumed futures
    continue the exact system a cold run of any schedule in this prefix
    would have built.  The attached auditor is captured *inside* each
    image — with ``fail_fast`` off, so capture can never abort — and
    capturing stops at the reference's first finding.
    """
    from ..audit.auditor import OnlineAuditor
    from ..audit.campaign import build_audit_system
    from ..audit.schedule import FaultSchedule

    if times is None:
        times = capture_times(config, timeline)
    fingerprint = config.fingerprint()
    probe = FaultSchedule(label="warmstart-ref", system_seed=seed,
                          overrides=tuple(sorted(overrides)),
                          origin="warmstart")
    system = build_audit_system(config, probe)
    auditor = OnlineAuditor(system, fail_fast=False,
                            include_ground_truth=config.include_ground_truth)
    images: List[SystemImage] = []
    for t in times:
        system.run(until=t)
        if auditor.violated:
            break
        images.append(capture(system, auditor, codec=codec, seed=seed,
                              overrides=probe.overrides,
                              config_fingerprint=fingerprint))
    return images


class WarmRunner:
    """Warm-start execution of one campaign's schedules.

    Owns an :class:`ImageStore`, decides per schedule whether a warm
    resume is available (building reference image sets on demand for
    prefixes that :meth:`plan` saw enough schedules share), and falls
    back to the cold path whenever it is not.  ``build_missing=False``
    makes the runner consume-only — the worker-process mode, where the
    coordinator pre-built every set into a shared on-disk store.
    """

    def __init__(self, config, store: Optional[ImageStore] = None,
                 timeline=None, codec: str = "pickle",
                 min_group: int = MIN_GROUP,
                 build_missing: bool = True) -> None:
        self.config = config
        self.fingerprint = config.fingerprint()
        self.store = store if store is not None else ImageStore()
        self.timeline = timeline
        self.codec = codec
        self.min_group = min_group
        self.build_missing = build_missing
        self._times: Optional[List[float]] = None
        self._group_counts: Dict[str, int] = {}
        self.warm_runs = 0
        self.cold_runs = 0
        self.sets_built = 0
        self.build_seconds = 0.0
        #: Wall-clock decoding images back into live systems (the cost
        #: the flock path amortizes to once per group).
        self.decode_seconds = 0.0
        #: Wall-clock running audited suffixes (and cold fallbacks).
        self.run_seconds = 0.0

    # ------------------------------------------------------------------
    def _key(self, schedule) -> PrefixKey:
        return PrefixKey.for_schedule(self.config, schedule)

    def plan(self, schedules) -> None:
        """Count prefix-group sizes (the build-worthiness signal)."""
        for sched in schedules:
            digest = self._key(sched).digest()
            self._group_counts[digest] = self._group_counts.get(digest, 0) + 1

    def planned_times(self) -> List[float]:
        """The capture plan (computed once per runner)."""
        if self._times is None:
            self._times = capture_times(self.config, self.timeline)
        return self._times

    def ensure_images(self, schedule, force: bool = False) -> bool:
        """Make sure the schedule's prefix has an image set.

        Builds one when allowed (``build_missing``) and worth it (the
        planned group reaches ``min_group``, or ``force`` — the shrink
        path, which replays one prefix dozens of times).  Returns
        whether a set exists afterwards.
        """
        key = self._key(schedule)
        if self.store.has(key):
            return True
        if not self.build_missing:
            return False
        if not force:
            if self._group_counts.get(key.digest(), 0) < self.min_group:
                return False
        with self.store.build_lock(key):
            # Double-checked: another process sharing this on-disk
            # store (a co-located fabric worker, a sibling coordinator)
            # may have built the set while we waited on the lock.
            if self.store.has(key):
                return True
            begin = time.monotonic()
            images = build_image_set(
                self.config, schedule.system_seed,
                overrides=tuple(sorted(schedule.overrides)),
                times=self.planned_times(), codec=self.codec)
            self.build_seconds += time.monotonic() - begin
            self.sets_built += 1
            self.store.put(key, images)
        return True

    def image_for(self, schedule) -> Optional[SystemImage]:
        """The newest usable image for ``schedule``, if any."""
        if not self.ensure_images(schedule):
            return None
        return self.store.latest_before(self._key(schedule),
                                        divergence_time(schedule))

    # ------------------------------------------------------------------
    def audit_schedule(self, schedule, fail_fast: bool = True):
        """Warm-or-cold audit of one schedule; findings, cold-identical."""
        return self.traced_audit(schedule, fail_fast=fail_fast)[0]

    def traced_audit(self, schedule, fail_fast: bool = False):
        """Audit one schedule, returning ``(findings, system)``.

        The system comes back with its full trace — prefix records
        travel inside the image, so a resumed run's trace is the whole
        run's trace.  The equivalence bench digests it against a cold
        run of the same schedule.
        """
        from ..audit.auditor import OnlineAuditor
        from ..audit.campaign import build_audit_system
        image = self.image_for(schedule)
        if image is None:
            self.cold_runs += 1
            system = build_audit_system(self.config, schedule)
            auditor = OnlineAuditor(
                system, fail_fast=fail_fast,
                include_ground_truth=self.config.include_ground_truth)
        else:
            self.warm_runs += 1
            begin = time.monotonic()
            system, auditor = resume(image, fail_fast=fail_fast)
            self.decode_seconds += time.monotonic() - begin
            schedule.arm(system)
        begin = time.monotonic()
        try:
            system.run()
        except AuditViolation:
            pass
        try:
            auditor.finalize()
        except AuditViolation:
            pass
        self.run_seconds += time.monotonic() - begin
        return auditor.findings, system

    def violates(self, schedule) -> bool:
        """Warm-start drop-in for ``schedule_violates`` (the shrink
        predicate): crashed replays count as non-violating there too."""
        try:
            return bool(self.audit_schedule(schedule, fail_fast=True))
        except Exception:
            return False

    def stats(self) -> Dict[str, float]:
        """Counters for reports and benches."""
        stats: Dict[str, float] = {
            "warm_runs": self.warm_runs, "cold_runs": self.cold_runs,
            "sets_built": self.sets_built,
            "build_seconds": round(self.build_seconds, 6),
            "decode_seconds": round(self.decode_seconds, 6),
            "run_seconds": round(self.run_seconds, 6)}
        stats.update(self.store.stats())
        return stats


def _run_one_schedule_warm(item) -> Dict:
    """Worker: warm-audit one ``(config, schedule, store root)`` item.

    The coordinator pre-built every worthwhile image set into the
    on-disk store at ``root``; workers only consume (``build_missing``
    off), so a missing set degrades to the cold path instead of
    duplicating reference runs across the pool.
    """
    from ..audit.config import AuditConfig
    from ..audit.schedule import FaultSchedule
    config_dict, schedule_dict, root = item
    config = AuditConfig.from_dict(config_dict)
    schedule = FaultSchedule.from_dict(schedule_dict)
    runner = WarmRunner(config, store=ImageStore(root=root),
                        build_missing=False)
    try:
        findings = runner.audit_schedule(schedule, fail_fast=True)
    except Exception as exc:  # simulation bug — report, don't kill the pool
        return {"schedule": schedule.to_dict(), "violated": False,
                "findings": [], "error": f"{type(exc).__name__}: {exc}",
                "warm": bool(runner.warm_runs)}
    return {"schedule": schedule.to_dict(),
            "violated": bool(findings),
            "findings": [f.to_dict() for f in findings],
            "error": None,
            "warm": bool(runner.warm_runs)}
