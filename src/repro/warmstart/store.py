"""Image stores: keyed, bounded caches of prefix image sets.

A *prefix* is one fault-free reference execution — identified by
``(campaign-config fingerprint, system seed, timing overrides)`` — and
its *image set* is the ascending-by-time list of
:class:`~repro.warmstart.image.SystemImage` captures taken along it.
The store keeps whole sets as the unit of caching (they are built in
one reference run and consumed together), with:

* an in-memory layer with LRU eviction bounded by total image bytes,
  so long campaigns cannot grow without limit;
* an optional on-disk layer (one file per prefix set, digest-named,
  atomic-rename writes — the :mod:`repro.parallel.cache` idioms), which
  is how image sets built in the coordinator reach worker processes.

Lookups are by :meth:`ImageStore.latest_before`: the newest image
captured *strictly before* a divergence time, the only resume point the
determinism contract permits.
"""

from __future__ import annotations

import bisect
import contextlib
import dataclasses
import hashlib
import json
import os
import pickle
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Tuple

try:  # advisory locking is POSIX-only; degrade to lock-free elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from .image import SystemImage

#: Default in-memory budget for cached image sets (bytes of payload).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


@dataclasses.dataclass(frozen=True)
class PrefixKey:
    """Coordinates of one reference prefix."""

    config_fingerprint: str
    system_seed: int
    overrides: Tuple[Tuple[str, float], ...] = ()

    @classmethod
    def for_schedule(cls, config, schedule) -> "PrefixKey":
        """The prefix a schedule's warm resume must come from."""
        return cls(config_fingerprint=config.fingerprint(),
                   system_seed=schedule.system_seed,
                   overrides=tuple(sorted(schedule.overrides)))

    def digest(self) -> str:
        """Filename-safe digest of the full key."""
        payload = json.dumps(
            [self.config_fingerprint, self.system_seed,
             [[k, v] for k, v in self.overrides]],
            separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


class ImageStore:
    """Bounded cache of prefix image sets, optionally disk-backed.

    ``root=None`` keeps everything in memory (the serial-campaign
    mode); with a directory, every ``put`` writes through to disk and
    ``get`` falls back to disk on a memory miss (the multi-process
    mode — workers open the same root read-only).
    """

    def __init__(self, root: Optional[os.PathLike] = None,
                 max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        self.root = Path(root) if root is not None else None
        self.max_bytes = max_bytes
        self._sets: "OrderedDict[str, List[SystemImage]]" = OrderedDict()
        self._bytes: Dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def _path(self, key: PrefixKey) -> Path:
        assert self.root is not None
        return self.root / f"{key.digest()}.imgset"

    def _charge(self, digest: str, images: List[SystemImage]) -> None:
        self._bytes[digest] = sum(img.nbytes for img in images)
        while (len(self._sets) > 1
               and sum(self._bytes.values()) > self.max_bytes):
            victim, _ = self._sets.popitem(last=False)
            self._bytes.pop(victim, None)
            self.evictions += 1

    # ------------------------------------------------------------------
    def put(self, key: PrefixKey, images: List[SystemImage]) -> None:
        """Cache ``images`` (sorted by capture time) under ``key``."""
        images = sorted(images, key=lambda img: img.captured_at)
        digest = key.digest()
        self._sets[digest] = images
        self._sets.move_to_end(digest)
        self._charge(digest, images)
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            path = self._path(key)
            tmp = path.with_name(path.name + f".tmp{os.getpid()}")
            with open(tmp, "wb") as fh:
                pickle.dump({"key": dataclasses.asdict(key),
                             "images": images}, fh,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)

    def get(self, key: PrefixKey) -> Optional[List[SystemImage]]:
        """The image set for ``key``, or ``None`` (unreadable/corrupt
        disk entries count as absent)."""
        digest = key.digest()
        images = self._sets.get(digest)
        if images is not None:
            self._sets.move_to_end(digest)
            self.hits += 1
            return images
        if self.root is not None:
            try:
                with open(self._path(key), "rb") as fh:
                    data = pickle.load(fh)
                images = list(data["images"])
            except (OSError, pickle.PickleError, KeyError, EOFError):
                images = None
            if images is not None:
                self._sets[digest] = images
                self._charge(digest, images)
                self.hits += 1
                return images
        self.misses += 1
        return None

    def has(self, key: PrefixKey) -> bool:
        """Whether a set exists (without counting a hit/miss)."""
        if key.digest() in self._sets:
            return True
        return self.root is not None and self._path(key).is_file()

    @contextlib.contextmanager
    def build_lock(self, key: PrefixKey):
        """Advisory exclusive lock for building ``key``'s image set.

        Co-located fabric workers (and the parallel warm coordinator's
        check-then-build) share one on-disk store; without mutual
        exclusion two processes that both miss can build the same
        reference prefix twice — wasted work — or interleave writes.
        The lock is per-prefix (``<digest>.lock`` beside the set file),
        blocking, and released on exit even if the build raises.  A
        memory-only store, or a platform without :mod:`fcntl`, degrades
        to lock-free behavior: correctness never depended on the lock
        (writes stay atomic-rename), only build economy does.
        """
        if self.root is None or fcntl is None:
            yield
            return
        self.root.mkdir(parents=True, exist_ok=True)
        lock_path = self.root / f"{key.digest()}.lock"
        with open(lock_path, "a+") as fh:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)

    def latest_before(self, key: PrefixKey, t: float
                      ) -> Optional[SystemImage]:
        """Newest image captured strictly before ``t``, or ``None``.

        Strictness is the determinism contract: an image captured *at*
        a fault time may already include events the armed fault must
        interleave with.
        """
        images = self.get(key)
        if not images:
            return None
        times = [img.captured_at for img in images]
        idx = bisect.bisect_left(times, t) - 1
        return images[idx] if idx >= 0 else None

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Counters for reports."""
        return {"sets": len(self._sets),
                "bytes": sum(self._bytes.values()),
                "hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}

    def clear(self) -> int:
        """Drop every cached set (memory and disk); returns count."""
        removed = len(self._sets)
        self._sets.clear()
        self._bytes.clear()
        if self.root is not None and self.root.is_dir():
            for path in self.root.glob("*.imgset"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
