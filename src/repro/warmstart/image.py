"""Full-system simulator images: freeze a mid-run system, thaw copies.

A :class:`SystemImage` is a byte-level snapshot of *everything* a run's
future depends on: the simulator (event heap, sequencer, pending
cancellations), every RNG stream at its exact position (including the
batched-uniform buffers), clocks, timers, nodes, stores, processes, the
trace recorder with its records so far, any already-armed fault
injectors — and, optionally, the online auditor wired into the trace.
The message-id allocator is per-system state (``System.msg_ids``) and
travels inside the graph, so any number of thawed systems coexist in
one OS process without touching global allocator state; its position is
additionally recorded beside the payload for older images.

The contract (asserted by the warm-start tests and the bench's digest
cross-checks): ``resume(capture(system))`` followed by running to the
horizon produces the *bit-for-bit* identical trace, findings, and
counters as the original system running uninterrupted.  Decoding always
yields an independent copy, so one image can seed any number of
divergent futures — the foundation of prefix-resume campaign execution
(:mod:`repro.warmstart.engine`).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional, Tuple

from ..messages.message import msg_id_position, reset_msg_ids
from ..snapshot.codec import get_codec


@dataclasses.dataclass
class SystemImage:
    """One frozen instant of a running system.

    ``seed`` / ``overrides`` / ``config_fingerprint`` describe the
    *prefix* this image belongs to (which system was run, under which
    campaign config, with which timing overrides); resuming is only
    valid for schedules that share all three and whose first divergence
    from the fault-free reference lies strictly after ``captured_at``.
    """

    captured_at: float
    codec_id: str
    payload: Any
    nbytes: int
    seed: int = 0
    overrides: Tuple[Tuple[str, float], ...] = ()
    config_fingerprint: str = ""


def capture(system, auditor=None, codec: str = "pickle",
            seed: Optional[int] = None,
            overrides: Tuple[Tuple[str, float], ...] = (),
            config_fingerprint: str = "") -> SystemImage:
    """Freeze ``system`` (and its attached ``auditor``) into an image.

    Must be called between events — i.e. after ``system.run(until=t)``
    returns, never from inside a callback.  The auditor is pickled in
    the same pass as the system so the shared references (trace
    recorder, process list) stay shared on resume.
    """
    enc = get_codec(codec)
    own_ids = getattr(system, "msg_ids", None)
    state = {
        "system": system,
        "auditor": auditor,
        # Redundant with system.msg_ids (pickled in the graph) but kept
        # for images decoded by older readers.
        "next_msg_id": (own_ids.position() if own_ids is not None
                        else msg_id_position()),
    }
    payload = enc.encode(state)
    return SystemImage(
        captured_at=system.sim.now,
        codec_id=enc.codec_id,
        payload=payload,
        nbytes=enc.measure(state, payload),
        seed=seed if seed is not None else system.config.seed,
        overrides=tuple(overrides),
        config_fingerprint=config_fingerprint,
    )


def resume(image: SystemImage, fail_fast: bool = False):
    """Thaw an independent ``(system, auditor)`` copy from ``image``.

    The thawed system carries its own message-id allocator at its
    captured position, so resuming mutates **no** process-global state
    — two images thawed side by side allocate independent,
    cold-identical id sequences.  (Images captured before allocators
    became per-system state fall back to restoring the module-wide
    allocator from the recorded position.)  ``fail_fast`` configures
    the thawed auditor — the captured reference auditor always ran with
    ``fail_fast=False`` so the capture itself could never abort.
    ``auditor`` is ``None`` when the image was captured without one.
    """
    dec = get_codec(image.codec_id)
    state = dec.decode(image.payload)
    system = state["system"]
    auditor = state["auditor"]
    if getattr(system, "msg_ids", None) is None:
        reset_msg_ids(state["next_msg_id"])
    if auditor is not None:
        auditor.fail_fast = fail_fast
    return system, auditor
