"""The fault-tolerant process host.

:class:`FtProcess` is the object the protocol engines hang off: it
composes an application component, the message bookkeeping (sequence
numbers, acknowledgement tracking, deduplication, journals, the shadow's
suppressed-message log), MDCD knowledge state, checkpoint capture /
restore, and the blocking-period message buffer.  A *software engine*
(an MDCD variant, :mod:`repro.mdcd`) decides what happens on application
sends/receives and "passed AT" notifications; a *hardware engine* (a TB
variant, :mod:`repro.tb`, or the write-through baseline) decides when
stable checkpoints are established and which deliveries are buffered.

Either engine may be absent: a process with no software engine sends
born-valid messages directly (used by the plain two-process TB scenarios
of paper Fig. 2), and a process with no hardware engine never blocks and
never writes stable checkpoints (pure-MDCD operation).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Set

from .app.component import ApplicationComponent, AppState, Payload
from .app.workload import Action, ActionKind, WorkloadDriver
from .checkpoint import Checkpoint
from .errors import StorageError
from .journal import Journal
from .messages.log import MessageLog
from .messages.message import (DEVICE, Message, MsgIdAllocator,
                               passed_at_notification,
                               _default_allocator as _default_msg_ids)
from .messages.sequence import AckTracker, ReceiveDeduplicator, SequenceAllocator
from .mdcd.state import MdcdState
from .runtime import CounterSet, SimProcess, TraceRecorder
from .runtime.ports import CrashPort, TransportPort
from .snapshot.sections import SnapshotEncoder
from .types import CheckpointKind, MessageKind, ProcessId, Role, StableContent


class IncarnationCounter:
    """System-wide recovery incarnation.

    Bumped by both software and hardware recovery; messages stamped with
    an older incarnation are rejected (and not acknowledged) on
    delivery, fencing pre-recovery traffic out of the recovered
    computation.
    """

    def __init__(self) -> None:
        self.value = 0

    def bump(self) -> int:
        """Advance to the next incarnation and return it."""
        self.value += 1
        return self.value


@dataclasses.dataclass
class ProcessSnapshot:
    """Everything a checkpoint freezes for one process.

    Encoded by :class:`~repro.checkpoint.Checkpoint` through the
    :mod:`~repro.snapshot` pipeline, which groups the fields into
    sections by each value's ``snapshot_section`` declaration (the
    undeclared bookkeeping fields form the ``counters`` section);
    restoring a snapshot restores the application state, the protocol knowledge
    (MDCD state, journals, the shadow's log), the message bookkeeping
    (sequence counter, dedup set, unacknowledged messages), and the
    workload cursor so re-execution resumes from the right action.
    """

    app_state: AppState
    mdcd: MdcdState
    sn_value: int
    dedup_seen: Set[int]
    unacked: List[Message]
    journal_sent: Journal
    journal_recv: Journal
    msg_log: MessageLog
    cursor: int
    dsn_counters: Dict[ProcessId, int] = dataclasses.field(default_factory=dict)


class FtProcess(SimProcess):
    """A simulated process under software and/or hardware fault tolerance.

    Parameters
    ----------
    process_id, node, network, trace:
        Substrate plumbing (see :class:`~repro.sim.process.SimProcess`).
    role:
        The paper's process role; ``None`` for plain processes outside
        the three-process model.
    component:
        The application component this process executes.
    driver:
        The workload driver replaying this process's action stream.
    incarnation:
        The shared :class:`IncarnationCounter`.
    """

    def __init__(self, process_id: ProcessId, node: CrashPort, network: TransportPort,
                 component: ApplicationComponent, driver: WorkloadDriver,
                 incarnation: IncarnationCounter,
                 role: Optional[Role] = None,
                 trace: Optional[TraceRecorder] = None) -> None:
        super().__init__(process_id, node, network, trace)
        self.role = role
        #: Whether this process is a guarded component's low-confidence
        #: active — the adapted TB then consults the pseudo dirty bit.
        #: Derived from the paper role here; topology builders set it
        #: for actives outside the three-process model.
        self.is_guarded_active = role is Role.ACTIVE_1
        self.component = component
        self.driver = driver
        self.incarnation = incarnation
        self.mdcd = MdcdState()
        #: Message-id allocator this process draws from.  The owning
        #: :class:`~repro.coordination.scheme.System` installs its own
        #: (one sequence per system, captured with warm-start images);
        #: bare processes built outside a system fall back to the
        #: module-wide test allocator.
        self.msg_ids: MsgIdAllocator = _default_msg_ids
        self.sn = SequenceAllocator()
        self.acks = AckTracker()
        self.dedup = ReceiveDeduplicator()
        self.journal_sent = Journal()
        self.journal_recv = Journal()
        self.msg_log = MessageLog()
        self.counters = CounterSet()
        #: Attached protocol engines (set via :meth:`attach_engines`).
        self.software = None
        self.hardware = None
        #: Default recipients for internal sends when no software engine
        #: routes them (plain processes).
        self.default_peers: List[ProcessId] = []
        #: Set when the process is taken out of service (a deposed
        #: ``P1_act`` after shadow takeover).
        self.deposed = False
        #: Generalized-protocol mode: allocate per-destination sequence
        #: numbers on internal sends so deterministic replay after a
        #: rollback regenerates a dedup-able stream (the
        #: piecewise-determinism assumption of message-logging systems).
        #: The paper-faithful three-process schemes leave this off.
        self.replay_dedup = False
        self._dsn_counters: Dict[ProcessId, int] = {}
        #: How long validated journal records are retained before the
        #: periodic compaction (run at stable-checkpoint completions)
        #: garbage-collects them.  Must comfortably exceed the stable
        #: checkpoint interval plus message-delay bounds.
        self.journal_retention: float = 600.0
        #: Per-process snapshot encoder: remembers the previous capture
        #: so journals and the message log encode as deltas.  Set
        #: ``incremental=False`` (via the system configs) to force full
        #: sections on every capture.
        self.snapshot_encoder = SnapshotEncoder()
        self._buffer: List[Message] = []
        self._deferred_actions: List[Action] = []
        self._pending_notifications: List[Message] = []
        self._deferred_acks: Dict[int, Message] = {}
        self._progress_offset = node.sim.now
        self._progress_at_crash: Optional[float] = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach_engines(self, software=None, hardware=None) -> None:
        """Attach the protocol engines (either may be ``None``)."""
        self.software = software
        self.hardware = hardware

    def start(self) -> None:
        """Begin executing the workload (and the hardware engine's
        timer, if one is attached)."""
        self.driver.start(self)
        if self.hardware is not None:
            self.hardware.start()

    # ------------------------------------------------------------------
    # progress accounting (rollback distance is measured in this unit)
    # ------------------------------------------------------------------
    @property
    def progress(self) -> float:
        """Accumulated computation, in work-seconds.

        Advances with true time and is rewound by checkpoint restores —
        the paper's "amount of computation quantified in time units that
        a process must undo" is a difference of two progress readings.
        """
        return self.sim.now - self._progress_offset

    def confidence_bit(self) -> int:
        """The bit the adapted TB protocol consults at timer expiry:
        ``pseudo_dirty_bit`` for a guarded active (paper footnote 2),
        the dirty bit for everyone else."""
        if self.is_guarded_active:
            return self.mdcd.pseudo_dirty_bit
        return self.mdcd.dirty_bit

    def current_ndc(self) -> Optional[int]:
        """The local stable-checkpoint epoch ``Ndc`` (``None`` when no
        hardware engine maintains one)."""
        if self.hardware is None:
            return None
        return getattr(self.hardware, "ndc", None)

    # ------------------------------------------------------------------
    # workload actions
    # ------------------------------------------------------------------
    def perform_action(self, action: Action) -> None:
        """Execute one workload action (called by the driver).

        Message-sending actions that land inside the process's own TB
        blocking period are deferred until the blocking ends — a blocked
        process neither reads nor sends application messages (paper
        Section 2.2); pure computation steps proceed.
        """
        if self.deposed or not self.alive:
            return
        if (action.kind is not ActionKind.LOCAL_STEP and self.hardware is not None
                and getattr(self.hardware, "in_blocking", False)):
            self._deferred_actions.append(action)
            self.counters.bump("blocked.deferred_send")
            return
        if action.kind is ActionKind.LOCAL_STEP:
            self.component.local_step(action.stimulus)
        elif action.kind is ActionKind.SEND_INTERNAL:
            if self.software is not None:
                self.software.on_send_internal(action)
            else:
                self._default_send_internal(action)
        elif action.kind is ActionKind.SEND_EXTERNAL:
            if self.software is not None:
                self.software.on_send_external(action)
            else:
                self._default_send_external(action)

    def _default_send_internal(self, action: Action) -> None:
        payload = self.component.produce_internal(action.stimulus)
        self.send_internal(payload, self.default_peers, sn=self.sn.allocate(),
                           dirty_bit=0, validated=True)

    def _default_send_external(self, action: Action) -> None:
        payload = self.component.produce_external(action.stimulus)
        self.send_external(payload, validated=True)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send_internal(self, payload: Payload, receivers: List[ProcessId],
                      sn: Optional[int], dirty_bit: int, validated: bool,
                      ndc: Optional[int] = None,
                      taint_sn: Optional[int] = None,
                      taint_map: Optional[Dict[str, int]] = None) -> List[Message]:
        """Send an internal application message to each receiver.

        One logical send fans out to one :class:`Message` per receiver
        (each tracked separately for acknowledgement).  The sender's
        journal records its validity view at send time: messages sent
        from a clean state are born validated.  ``taint_sn`` piggybacks
        contamination provenance (generalized protocol); ``taint_map``
        is its per-source form (N-component topologies).
        """
        sent = []
        for receiver in receivers:
            dsn = None
            if self.replay_dedup:
                dsn = self._dsn_counters.get(receiver, 0) + 1
                self._dsn_counters[receiver] = dsn
            message = Message(kind=MessageKind.INTERNAL, sender=self.process_id,
                              receiver=receiver, payload=payload, sn=sn,
                              ndc=ndc, dirty_bit=dirty_bit, taint_sn=taint_sn,
                              taint_map=dict(taint_map) if taint_map else None,
                              dsn=dsn, corrupt=payload.corrupt,
                              incarnation=self.incarnation.value,
                              msg_id=self.msg_ids.allocate())
            self.journal_sent.add(message, validated=validated, time=self.sim.now)
            self.acks.sent(message)
            self.transmit(message)
            sent.append(message)
        self.counters.bump("sent.internal")
        return sent

    def send_external(self, payload: Payload, validated: bool) -> Message:
        """Send an external message to the device world.

        External messages are not acknowledgement-tracked (they leave
        the system; hardware recovery must not replay commands that
        already reached a device — the AT/validation machinery governs
        them instead).
        """
        message = Message(kind=MessageKind.EXTERNAL, sender=self.process_id,
                          receiver=DEVICE, payload=payload,
                          corrupt=payload.corrupt,
                          incarnation=self.incarnation.value,
                          msg_id=self.msg_ids.allocate())
        self.journal_sent.add(message, validated=validated, time=self.sim.now)
        self.transmit(message)
        self.counters.bump("sent.external")
        return message

    def send_passed_at(self, receivers: List[ProcessId], msg_sn: Optional[int],
                       ndc: Optional[int],
                       bound_map: Optional[Dict[str, int]] = None) -> List[Message]:
        """Broadcast a "passed AT" notification.  ``bound_map`` carries
        the per-source certified bounds in N-component topologies."""
        sent = []
        for receiver in receivers:
            message = passed_at_notification(self.process_id, receiver, msg_sn, ndc,
                                             bound_map=bound_map,
                                             msg_id=self.msg_ids.allocate())
            message.incarnation = self.incarnation.value
            self.transmit(message)
            sent.append(message)
        self.counters.bump("sent.passed_at")
        return sent

    def resend(self, message: Message) -> Message:
        """Re-transmit a logical message during recovery (fresh msg_id,
        current incarnation, original dedup key).

        The clone supersedes the original in the acknowledgement
        tracker: the original's ack can never arrive (its delivery is
        fenced or was lost), so keeping it would leak.
        """
        clone = message.clone_for_resend(self.msg_ids)
        clone.incarnation = self.incarnation.value
        self.acks.acked(message.msg_id)
        self.acks.sent(clone)
        self.transmit(clone)
        self.counters.bump("resent")
        return clone

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def handle_message(self, message: Message) -> bool:
        """Entry point for network deliveries.

        Applies the incarnation fence, lets the hardware engine buffer
        deliveries that fall inside a blocking period, and otherwise
        dispatches to the software engine.

        Always returns ``False``: an :class:`FtProcess` suppresses the
        network's automatic acknowledgement and acknowledges explicitly
        (see :meth:`_acknowledge`), because an ack here certifies more
        than delivery — a buffered message is acked when *read*, and a
        potentially-contaminated message only when *validated*.  Until
        then the message stays in its sender's unacknowledged set, the
        TB protocols' handle for restoring it during recovery.
        """
        if message.incarnation < self.incarnation.value:
            self.counters.bump("dropped.stale_incarnation")
            return False
        if self.deposed:
            self.counters.bump("dropped.deposed")
            return False
        if self.hardware is not None and self.hardware.should_buffer(message):
            self._buffer.append(message)
            self.counters.bump(f"blocked.buffered.{message.kind.value}")
            if self.trace.wants("blocking.buffered"):
                self.trace.record(self.sim.now, "blocking.buffered",
                                  self.process_id, desc=message.describe())
            return False
        self.dispatch(message)
        return False

    def dispatch(self, message: Message) -> bool:
        """Process a delivery that is not buffered, and acknowledge it
        (immediately, or deferred until validation — see
        :meth:`_acknowledge`)."""
        if message.kind is MessageKind.PASSED_AT:
            local_ndc = self.current_ndc()
            if self.software is not None:
                self.software.on_passed_at(message)
            if (local_ndc is not None and message.ndc is not None
                    and message.ndc > local_ndc):
                # The notifier has already completed the stable
                # checkpoint epoch we have not: the engine's Ndc gate
                # rightly kept it from touching the current (or
                # in-progress) establishment, but the validation itself
                # is durable knowledge — the paper's write_disk is
                # synchronous, so a real process would consume this
                # message after Ndc catches up and the gate matches.
                # Stash it for reprocessing at establishment completion.
                self._pending_notifications.append(message)
                self.counters.bump("passed_at.deferred")
            self.counters.bump("recv.passed_at")
            self.network.ack(message)
            return True
        if self.dedup.is_duplicate(message):
            self.counters.bump("recv.duplicate")
            self._acknowledge(message)
            return True
        if self.software is not None:
            self.software.on_incoming_app(message)
        else:
            self.apply_app_message(message, validated=message.dirty_bit in (0, None))
        self._acknowledge(message)
        return True

    def _acknowledge(self, message: Message) -> None:
        """Acknowledge an application message — immediately if a future
        rollback of this process cannot forget it, otherwise deferred
        until the next validation event.

        The receiver's MDCD rollback target (its most recent volatile
        checkpoint) precedes (a) every message it applied as potentially
        contaminated and (b) *every* message — even a born-valid one —
        applied while the receiver itself was potentially contaminated
        (the Type-1 checkpoint that anchors the contamination interval
        was taken at its start).  In both cases rolling back forgets the
        message, so the sender must keep it re-sendable — i.e.
        unacknowledged — until a validation cleans the receiver, after
        which every future rollback target reflects it.  This extends
        the TB protocols' "ack certifies read" to "ack certifies a read
        that rollback cannot forget"; without it, a clean process
        feeding a contaminated one loses messages across the
        contamination interval (observed in the generalized K-peer
        topology, where processes off the contamination path keep
        sending into it).
        """
        record = self.journal_recv.get(message.dedup_key)
        if (message.kind is MessageKind.INTERNAL and record is not None
                and (not record.validated or self.confidence_bit() == 1)):
            self._deferred_acks[message.dedup_key] = message
            self.counters.bump("ack.deferred")
            return
        self.network.ack(message)

    def flush_deferred_acks(self) -> int:
        """Acknowledge deferred messages that a future rollback of this
        process can no longer forget: their records are validated *and*
        the process is clean again (so its next recovery anchor reflects
        them).  Called by the MDCD engines after every knowledge-update
        (validation) event; returns how many were released."""
        if self.confidence_bit() == 1:
            return 0
        released = 0
        for key in list(self._deferred_acks):
            record = self.journal_recv.get(key)
            if record is None or record.validated:
                self.network.ack(self._deferred_acks.pop(key))
                released += 1
        if released:
            self.counters.bump("ack.released", released)
        return released

    def apply_app_message(self, message: Message, validated: bool) -> None:
        """Record and apply an application message to the component.

        The journal record is timestamped with the message's *birth*
        (first transmission) so both ends of a re-sent message carry the
        same time — the pruning-horizon comparison in the checkers
        depends on that symmetry.
        """
        self.dedup.record(message)
        born = message.born_at if message.born_at > 0.0 else self.sim.now
        self.journal_recv.add(message, validated=validated, time=born)
        self.component.receive_internal(message.payload)
        self.counters.bump("recv.applied")

    def handle_ack(self, msg_id: int) -> None:
        """Network acknowledgement: release the in-flight record."""
        self.acks.acked(msg_id)

    # ------------------------------------------------------------------
    # blocking-period buffer
    # ------------------------------------------------------------------
    def release_buffer(self) -> int:
        """Dispatch messages buffered during a blocking period (in
        arrival order), then run the sends the blocking deferred.
        Returns how many buffered messages were processed."""
        pending, self._buffer = self._buffer, []
        processed = 0
        for message in pending:
            if message.incarnation < self.incarnation.value:
                self.counters.bump("dropped.stale_incarnation")
                continue
            self.dispatch(message)
            processed += 1
        deferred, self._deferred_actions = self._deferred_actions, []
        for action in deferred:
            self.perform_action(action)
        return processed

    def buffered_count(self) -> int:
        """Number of deliveries currently held by the blocking buffer."""
        return len(self._buffer)

    def reprocess_notifications(self) -> int:
        """Re-dispatch "passed AT" notifications that arrived ahead of
        the local stable-checkpoint epoch (see :meth:`dispatch`).
        Called by the TB engines right after ``Ndc`` advances; returns
        how many were replayed."""
        if not self._pending_notifications:
            return 0
        local_ndc = self.current_ndc()
        pending, self._pending_notifications = self._pending_notifications, []
        replayed = 0
        for message in pending:
            if message.incarnation < self.incarnation.value:
                continue
            if (local_ndc is not None and message.ndc is not None
                    and message.ndc > local_ndc):
                self._pending_notifications.append(message)
                continue
            if self.software is not None:
                self.software.on_passed_at(message)
            replayed += 1
        return replayed

    # ------------------------------------------------------------------
    # checkpoint capture / restore
    # ------------------------------------------------------------------
    def make_snapshot(self) -> ProcessSnapshot:
        """Assemble the checkpointable state (not yet pickled)."""
        return ProcessSnapshot(
            app_state=self.component.snapshot(),
            mdcd=self.mdcd.copy(),
            sn_value=self.sn.current,
            dedup_seen=self.dedup.snapshot(),
            unacked=self.acks.unacknowledged(),
            journal_sent=self.journal_sent,
            journal_recv=self.journal_recv,
            msg_log=self.msg_log,
            cursor=self.driver.cursor,
            dsn_counters=dict(self._dsn_counters),
        )

    def capture_checkpoint(self, kind: CheckpointKind,
                           epoch: Optional[int] = None,
                           content: Optional[StableContent] = None,
                           meta: Optional[Dict[str, Any]] = None) -> Checkpoint:
        """Snapshot the current state into a checkpoint record (pure
        capture; the caller decides which store it goes to)."""
        base_meta = {"dirty_bit": self.mdcd.dirty_bit,
                     "pseudo_dirty_bit": self.mdcd.pseudo_dirty_bit}
        base_meta.update(meta or {})
        store = self.node.stable if kind is CheckpointKind.STABLE \
            else self.node.volatile
        return Checkpoint.capture(
            process_id=self.process_id, kind=kind, state=self.make_snapshot(),
            taken_at=self.sim.now, work_done=self.progress, epoch=epoch,
            content=content, meta=base_meta, codec=store.codec,
            encoder=self.snapshot_encoder)

    def take_volatile_checkpoint(self, kind: CheckpointKind,
                                 meta: Optional[Dict[str, Any]] = None) -> Checkpoint:
        """Capture and save a volatile (RAM) checkpoint."""
        # Garbage-collect old validated journal records first: without a
        # hardware engine (pure MDCD) this is the only periodic hook, and
        # snapshot size would otherwise grow without bound.
        self.compact_journals()
        checkpoint = self.capture_checkpoint(kind, meta=meta)
        self.node.volatile.save(checkpoint)
        self.counters.bump(f"checkpoint.{kind.value}")
        if self.trace.enabled:
            self.trace.record(self.sim.now, f"checkpoint.volatile.{kind.value}",
                              self.process_id, work=checkpoint.work_done,
                              **(meta or {}))
        return checkpoint

    def compact_journals(self) -> int:
        """Garbage-collect old validated journal records (bounds the
        pickled size of checkpoints over long runs).  Called by the
        hardware engines at stable-checkpoint completions."""
        horizon = self.sim.now - self.journal_retention
        if horizon <= 0:
            return 0
        return (self.journal_sent.prune_validated_before(horizon)
                + self.journal_recv.prune_validated_before(horizon))

    def volatile_checkpoint(self) -> Optional[Checkpoint]:
        """The most recent volatile checkpoint (``rCKPT``), if any."""
        return self.node.volatile.peek(self.process_id)

    def restore_from(self, checkpoint: Checkpoint, reason: str) -> float:
        """Restore the process from ``checkpoint`` and return the
        rollback distance (work-seconds undone).

        Restores the application state, protocol knowledge, message
        bookkeeping and workload cursor; the driver then re-executes the
        undone actions, regenerating (and re-sending) their messages.
        """
        snapshot: ProcessSnapshot = checkpoint.restore_state()
        basis = self._progress_at_crash if self._progress_at_crash is not None \
            else self.progress
        self._progress_at_crash = None
        distance = max(0.0, basis - checkpoint.work_done)
        self.component.restore(snapshot.app_state)
        self.mdcd = snapshot.mdcd
        self.sn.restore(snapshot.sn_value)
        self.dedup.restore(snapshot.dedup_seen)
        self.acks.restore(snapshot.unacked)
        self.journal_sent = snapshot.journal_sent
        self.journal_recv = snapshot.journal_recv
        self.msg_log = snapshot.msg_log
        self._dsn_counters = dict(getattr(snapshot, "dsn_counters", {}) or {})
        self._buffer = []
        self._deferred_actions = []
        self._pending_notifications = []
        self._deferred_acks = {}
        # The decoded journals/log replace the objects the encoder's
        # baselines describe: the next capture must emit full sections.
        self.snapshot_encoder.reset()
        self._progress_offset = self.sim.now - checkpoint.work_done
        self.driver.rewind_to(snapshot.cursor)
        self.counters.bump(f"rollback.{reason}")
        self.trace.record(self.sim.now, f"recovery.rollback.{reason}",
                          self.process_id, distance=distance,
                          kind=checkpoint.kind.value, epoch=checkpoint.epoch)
        return distance

    def roll_forward(self, reason: str) -> None:
        """Record a roll-forward decision (continue from current state)."""
        self.counters.bump(f"rollforward.{reason}")
        self.trace.record(self.sim.now, f"recovery.rollforward.{reason}",
                          self.process_id, progress=self.progress)

    # ------------------------------------------------------------------
    # role lifecycle
    # ------------------------------------------------------------------
    def depose(self) -> None:
        """Take the process out of service (failed ``P1_act``)."""
        self.deposed = True
        self.driver.pause()
        if self.hardware is not None:
            self.hardware.stop()
        self.trace.record(self.sim.now, "recovery.depose", self.process_id)

    def request_software_recovery(self, failed_message: Message) -> None:
        """Escalate a failed acceptance test to the system's software
        recovery manager (installed by the system builder)."""
        manager = getattr(self, "recovery_manager", None)
        if manager is None:
            from .errors import AcceptanceTestFailure
            raise AcceptanceTestFailure(
                f"AT failed at {self.process_id} and no recovery manager is installed")
        manager.recover(detected_by=self, failed_message=failed_message)

    # ------------------------------------------------------------------
    # crash handling
    # ------------------------------------------------------------------
    def on_node_crash(self) -> None:
        """Freeze on crash: remember progress for distance accounting,
        stop the workload, drop buffered deliveries (they were in RAM)."""
        self._progress_at_crash = self.progress
        self.driver.pause()
        self._buffer = []
        self._deferred_actions = []
        self._pending_notifications = []
        self._deferred_acks = {}
        if self.hardware is not None:
            self.hardware.on_crash()
