"""Command-line interface: ``python -m repro <command>``.

Every reproduction artifact is runnable from the shell:

.. code-block:: bash

    python -m repro scenarios           # Figures 1, 2, 3, 4, 6
    python -m repro fig7 [--full]       # the headline rollback sweep
    python -m repro table1              # original vs adapted TB
    python -m repro overhead            # performance cost by scheme
    python -m repro ablations           # design-choice removals
    python -m repro demo                # one coordinated run, narrated

The campaign commands (``fig7``, ``overhead``, ``ablations``) take
``--seed`` / ``--replications`` to reshape the campaign, ``--workers N``
to shard replications over worker processes, and (where results are
cacheable) ``--no-cache`` to bypass the on-disk result cache
(``$REPRO_CACHE_DIR``, default ``~/.cache/repro-campaigns``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cache_from_args(args):
    """A ResultCache unless ``--no-cache`` was given."""
    if getattr(args, "no_cache", False):
        return None
    from .parallel.cache import ResultCache
    return ResultCache()


def _cmd_scenarios(_args) -> int:
    from .experiments.scenarios import run_all_scenarios
    results = run_all_scenarios()
    for result in results:
        print(result)
    return 0 if all(r.passed for r in results) else 1


def _cmd_fig7(args) -> int:
    import dataclasses
    from .experiments.figure7 import Figure7Config, format_figure7, run_figure7
    config = Figure7Config() if args.full else Figure7Config(
        internal_rates=(60, 100, 140, 200), horizon=20_000.0, replications=1)
    if args.seed is not None:
        config = dataclasses.replace(config, seed=args.seed)
    if args.replications is not None:
        config = dataclasses.replace(config, replications=args.replications)
    print(format_figure7(run_figure7(config, workers=args.workers,
                                     cache=_cache_from_args(args))))
    return 0


def _cmd_table1(args) -> int:
    from .experiments.table1 import Table1Config, format_table1, run_table1
    config = Table1Config()
    print(format_table1(run_table1(config, workers=args.workers), config))
    return 0


def _cmd_overhead(args) -> int:
    import dataclasses
    from .experiments.overhead import OverheadConfig, format_overhead, run_overhead
    config = OverheadConfig()
    if args.seed is not None:
        config = dataclasses.replace(config, seed=args.seed)
    if args.replications is not None:
        config = dataclasses.replace(config, replications=args.replications)
    print(format_overhead(run_overhead(config, workers=args.workers)))
    return 0


def _cmd_topology_sweep(args) -> int:
    import dataclasses
    from .experiments.topology_sweep import (
        TopologySweepConfig,
        format_topology_sweep,
        run_topology_sweep,
    )
    config = TopologySweepConfig()
    if args.seed is not None:
        config = dataclasses.replace(config, seed=args.seed)
    if args.horizon is not None:
        config = dataclasses.replace(config, horizon=args.horizon)
    if args.topologies:
        specs = tuple(s.strip() for s in args.topologies.split(",") if s.strip())
        config = dataclasses.replace(config, topologies=specs)
    print(format_topology_sweep(run_topology_sweep(config,
                                                   workers=args.workers)))
    return 0


def _cmd_ablations(args) -> int:
    import dataclasses
    from .experiments.ablations import (
        ablate_at_coverage,
        ablate_blocking,
        ablate_dirty_fraction,
        ablate_interval,
        ablate_ndc_gating,
        ablate_swap,
        format_ablation,
    )
    from .experiments.figure7 import Figure7Config
    n = args.replications if args.replications is not None \
        else (2 if not args.full else 4)
    cache = _cache_from_args(args)
    base5 = Figure7Config(horizon=15_000.0, replications=1)
    base6 = Figure7Config(horizon=20_000.0, replications=2)
    if args.seed is not None:
        base5 = dataclasses.replace(base5, seed=args.seed)
        base6 = dataclasses.replace(base6, seed=args.seed)
    if args.replications is not None:
        base5 = dataclasses.replace(base5, replications=args.replications)
        base6 = dataclasses.replace(base6, replications=args.replications)
    print(format_ablation("Ablation 1 — mid-blocking content swap",
                          ablate_swap(12 if not args.full else 40)))
    print()
    print(format_ablation("Ablation 2 — Ndc gating",
                          ablate_ndc_gating(seeds=n, horizon=2000.0)))
    print()
    print(format_ablation("Ablation 3 — blocking period",
                          ablate_blocking(seeds=n, horizon=1000.0)))
    print()
    print(format_ablation("Ablation 4 — AT coverage",
                          ablate_at_coverage(seeds=max(n, 4),
                                             workers=args.workers)))
    print()
    print(format_ablation("Ablation 5 — dirty-fraction regime",
                          ablate_dirty_fraction(base=base5,
                                                workers=args.workers,
                                                cache=cache)))
    print()
    print(format_ablation("Ablation 6 — checkpoint interval",
                          ablate_interval(base=base6, workers=args.workers,
                                          cache=cache)))
    return 0


def _cmd_snapshot_stats(args) -> int:
    from .app.workload import WorkloadConfig
    from .coordination.scheme import Scheme, SystemConfig, build_system
    from .experiments.reporting import format_table
    from .snapshot import available_codecs
    from .snapshot.sections import SECTION_ORDER

    horizon = args.horizon
    system = build_system(SystemConfig(
        scheme=Scheme(args.scheme), seed=args.seed, horizon=horizon,
        volatile_codec=args.codec, stable_codec=args.codec,
        incremental_snapshots=not args.full_snapshots,
        workload1=WorkloadConfig(internal_rate=0.1, external_rate=0.02,
                                 step_rate=0.02, horizon=horizon),
        workload2=WorkloadConfig(internal_rate=0.05, external_rate=0.02,
                                 step_rate=0.02, horizon=horizon)))
    system.run()

    mode = "full" if args.full_snapshots else "incremental"
    print(f"scheme={args.scheme} seed={args.seed} horizon={horizon:.0f}s "
          f"codec={args.codec} capture={mode} "
          f"(codecs available: {', '.join(available_codecs())})\n")
    rows = []
    for p in system.process_list():
        for store_name, store in (("volatile", p.node.volatile),
                                  ("stable", p.node.stable)):
            if store.saves == 0:
                continue
            rows.append([str(p.process_id), store_name, store.saves,
                         f"{store.bytes_written / 1024.0:.1f}"]
                        + [f"{store.bytes_by_section.get(s, 0) / 1024.0:.1f}"
                           for s in SECTION_ORDER])
    print(format_table(
        ["process", "store", "saves", "total KiB"] + list(SECTION_ORDER),
        rows, title="Checkpoint bytes by snapshot section (KiB)"))
    enc_rows = []
    for p in system.process_list():
        enc = p.snapshot_encoder
        for section in ("journals", "msg_log"):
            enc_rows.append([str(p.process_id), section,
                             enc.full_encodes.get(section, 0),
                             enc.delta_encodes.get(section, 0)])
    print()
    print(format_table(["process", "section", "full captures",
                        "delta captures"], enc_rows,
                       title="Incremental-capture engagement"))
    return 0


def _cmd_bench_kernel(args) -> int:
    import json
    from .experiments.kernel_bench import (
        bench_record,
        format_record,
        write_record,
    )

    kwargs = dict(repeats=args.repeats)
    if args.events is not None:
        kwargs["churn_events"] = args.events
        kwargs["storm_events"] = args.events
    if args.horizon is not None:
        kwargs["campaign_horizon"] = args.horizon
    if args.quick:
        kwargs.setdefault("churn_events", 30_000)
        kwargs.setdefault("storm_events", 30_000)
        kwargs.setdefault("campaign_horizon", 3_000.0)
        kwargs["repeats"] = 1
    record = bench_record(**kwargs)
    if args.json:
        write_record(record, args.json)
    print(format_record(record))
    ok = (record["determinism"]["all"]
          and all(bench["identical_execution"]
                  for bench in record["microbench"].values()))
    if not ok:
        print(json.dumps(record["determinism"], indent=2), file=sys.stderr)
    return 0 if ok else 1


def _cmd_bench_warmstart(args) -> int:
    from .experiments.warmstart_bench import (
        bench_record,
        format_record,
        write_record,
    )

    kwargs = {}
    if args.horizon is not None:
        kwargs["horizon"] = args.horizon
    if args.golden is not None:
        kwargs["golden_path"] = args.golden
    record = bench_record(**kwargs)
    if args.json:
        write_record(record, args.json)
    print(format_record(record))
    # The CLI gates on equivalence (a fast wrong answer is worthless);
    # the speedup floor is asserted by benchmarks/bench_warmstart.py.
    return 0 if record["equivalent"] else 1


def _cmd_bench_fabric(args) -> int:
    from .experiments.fabric_bench import (
        bench_record,
        format_record,
        write_record,
    )

    kwargs = {}
    if args.schedules is not None:
        kwargs["schedules"] = args.schedules
    if args.horizon is not None:
        kwargs["horizon"] = args.horizon
    if args.workers is not None:
        kwargs["workers"] = args.workers
    record = bench_record(**kwargs)
    if args.json:
        write_record(record, args.json)
    print(format_record(record))
    # The CLI gates on equivalence and transfer economics; the speedup
    # floor (CPU-conditional) is asserted by benchmarks/bench_fabric.py.
    ok = record["equivalent"] and record["transfers"]["transfer_once"]
    return 0 if ok else 1


def _cmd_audit(args) -> int:
    import dataclasses
    from .audit import (
        AuditConfig,
        artifact_schedules,
        audit_schedule,
        format_audit_report,
        read_artifact,
        run_audit,
        sensitivity_config,
        sensitivity_schedules,
        write_artifact,
    )

    if args.expect_violation and args.expect_clean:
        print("--expect-violation and --expect-clean are mutually "
              "exclusive", file=sys.stderr)
        return 2

    if args.replay is not None:
        # Replay the counterexamples of an artifact (diagnosis mode):
        # report every finding of every schedule, no fail-fast.
        report = read_artifact(args.replay)
        config = report.config
        if args.mutation is not None:
            config = dataclasses.replace(config, mutation=args.mutation)
        violated = 0
        for schedule in artifact_schedules(report):
            findings = audit_schedule(config, schedule, fail_fast=False)
            status = "VIOLATES" if findings else "clean"
            print(f"{schedule.describe()}: {status}")
            for finding in findings[:5]:
                print(f"  {finding.describe()}")
            violated += bool(findings)
        if args.expect_violation:
            return 0 if violated else 1
        return 0 if not violated else 1

    timeline = None
    if args.mutation is not None:
        config = sensitivity_config(mutation=args.mutation,
                                    scheme=args.scheme, seed=args.seed)
        schedules = sensitivity_schedules(config)
    else:
        config = AuditConfig(scheme=args.scheme, seed=args.seed,
                             schedules=args.schedules, horizon=args.horizon,
                             topology=args.topology, flock=args.flock,
                             fork_batch=args.fork_batch)
        schedules = None
        if args.warmstart or args.flock:
            # Warm-start and flock both trade per-schedule seed
            # diversity for prefix reuse: generate the campaign once
            # (reference timeline computed here, reused for image
            # capture), then rewrite every schedule onto the shared
            # system seed.
            from .audit.generator import generate_schedules, reference_timeline
            from .warmstart import share_schedule_seeds
            timeline = reference_timeline(config)
            schedules = share_schedule_seeds(
                config, generate_schedules(config, timeline=timeline))
    fabric = getattr(args, "fabric", None)
    fabric_opts = None
    if fabric is not None:
        fabric_opts = {}
        if getattr(args, "journal", None):
            fabric_opts["journal"] = args.journal
        if getattr(args, "cas_dir", None):
            fabric_opts["cas_dir"] = args.cas_dir
    report = run_audit(config, workers=args.workers, shrink=args.shrink,
                       schedules=schedules, log=lambda msg: print(msg),
                       warmstart=args.warmstart, timeline=timeline,
                       flock=args.flock, fork_batch=args.fork_batch,
                       fabric=fabric, fabric_opts=fabric_opts)
    print(format_audit_report(report))
    if args.out is not None:
        write_artifact(report, args.out)
        print(f"artifact written to {args.out}")
    if args.expect_violation:
        # Mutation testing / naive-scheme CI: success means the audit
        # *caught* something.
        return 0 if report.violations else 1
    return 0 if report.clean else 1


def _cmd_fabric_supervisor(args) -> int:
    """Serve one campaign to externally-started fabric workers."""
    from .audit import (
        AuditConfig,
        format_audit_report,
        run_audit,
        write_artifact,
    )
    from .fabric import FabricConfig

    config = AuditConfig(scheme=args.scheme, seed=args.seed,
                         schedules=args.schedules, horizon=args.horizon,
                         topology=args.topology, flock=args.flock,
                         fork_batch=args.fork_batch)
    timeline = None
    schedules = None
    if args.warmstart or args.flock:
        from .audit.generator import generate_schedules, reference_timeline
        from .warmstart import share_schedule_seeds
        timeline = reference_timeline(config)
        schedules = share_schedule_seeds(
            config, generate_schedules(config, timeline=timeline))
    fabric_opts = {
        "cas_dir": args.cas_dir,
        "fabric": FabricConfig(host=args.host, port=args.port,
                               shard_size=args.shard_size,
                               heartbeat_timeout=args.heartbeat_timeout),
        "workers": args.spawn_workers,
    }
    if args.journal:
        fabric_opts["journal"] = args.journal
    report = run_audit(config, shrink=args.shrink, schedules=schedules,
                       log=lambda msg: print(msg, flush=True),
                       warmstart=args.warmstart, timeline=timeline,
                       flock=args.flock, fork_batch=args.fork_batch,
                       fabric=fabric_opts.pop("workers"),
                       fabric_opts=fabric_opts)
    print(format_audit_report(report))
    if args.out is not None:
        write_artifact(report, args.out)
        print(f"artifact written to {args.out}")
    if args.expect_violation:
        return 0 if report.violations else 1
    return 0 if report.clean else 1


def _cmd_fabric_worker(args) -> int:
    """One host's worker agent: serve campaigns until told otherwise."""
    from .fabric import FabricWorker

    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        print(f"--connect wants HOST:PORT, got {args.connect!r}",
              file=sys.stderr)
        return 2
    worker = FabricWorker(args.name, cas_root=args.cas_dir,
                          log=lambda msg: print(msg, flush=True))
    try:
        stats = worker.run(host, int(port),
                           retry_delay=args.retry_delay,
                           connect_timeout=args.connect_timeout,
                           once=args.once)
    except (TimeoutError, KeyboardInterrupt) as exc:
        print(f"worker stopping: {exc}", file=sys.stderr)
        return 1
    print(f"worker {stats['worker']}: {stats['shards']} shards / "
          f"{stats['schedules']} schedules across {stats['campaigns']} "
          f"campaigns; {stats['transfers']} image transfers, "
          f"{stats['cas_hits']} CAS hits")
    return 0


def _cmd_report(_args) -> int:
    from .experiments.report import generate_report
    print(generate_report())
    return 0


def _cmd_timeline(args) -> int:
    from .app.workload import WorkloadConfig
    from .coordination.scheme import Scheme, SystemConfig, build_system
    from .experiments.timeline import render_timeline
    from .types import ProcessId, Role

    scheme = Scheme(args.scheme)
    horizon = 2_000.0
    system = build_system(SystemConfig(
        scheme=scheme, seed=args.seed, horizon=horizon,
        workload1=WorkloadConfig(internal_rate=0.02, external_rate=0.004,
                                 step_rate=0.01, horizon=horizon),
        workload2=WorkloadConfig(internal_rate=0.01, external_rate=0.004,
                                 step_rate=0.01, horizon=horizon)))
    system.run()
    pseudo = (ProcessId(Role.ACTIVE_1.value)
              if scheme.uses_modified_mdcd else None)
    print(render_timeline(system.trace,
                          [p.process_id for p in system.process_list()],
                          since=100.0, until=horizon - 100.0, width=args.width,
                          pseudo_for=pseudo))
    return 0


def _cmd_demo(args) -> int:
    from .analysis import check_system_line, common_stable_line, summarize_violations
    from .app.faults import HardwareFaultPlan, SoftwareFaultPlan
    from .coordination.scheme import Scheme, SystemConfig, build_system

    horizon = 4_000.0
    system = build_system(SystemConfig(scheme=Scheme.COORDINATED,
                                       seed=args.seed, horizon=horizon))
    system.inject_software_fault(SoftwareFaultPlan(activate_at=horizon / 4.0))
    system.inject_crash(HardwareFaultPlan(node_id="N2", crash_at=horizon / 2.0,
                                          repair_time=2.0))
    system.run()
    print(f"Coordinated system, seed {args.seed}: software fault at "
          f"{horizon / 4:.0f}s, crash of N2 at {horizon / 2:.0f}s.\n")
    for rec in system.trace:
        if rec.category.startswith(("fault.", "at.fail", "recovery.")):
            who = f" [{rec.process}]" if rec.process else ""
            print(f"  t={rec.time:9.2f}{who:10s} {rec.category}")
    violations = summarize_violations(
        check_system_line(common_stable_line(system)))
    clean = all(not p.component.state.corrupt
                for p in system.process_list() if not p.deposed)
    print(f"\nshadow takeover: {system.sw_recovery.completed}; hardware "
          f"recoveries: {system.hw_recovery.recoveries}")
    print(f"final stable line violations: {violations or 'none'}")
    print(f"in-service states clean: {clean}")
    return 0 if clean and not violations else 1


def _cmd_live_demo(args) -> int:
    from .live.harness import LiveHarness
    from .topology.model import Topology

    topo = Topology.paper()
    active_id = topo.actives()[0].role_id
    peer_id = topo.peers()[0].role_id
    harness = LiveHarness(
        seed=args.seed, tb_interval=args.tb_interval, workdir=args.workdir,
        deadline=args.deadline,
        heartbeat={"interval": args.heartbeat, "timeout": args.timeout})
    summary = harness.run_demo()
    print(f"Live demo, seed {args.seed}: {topo.size} OS processes, "
          f"TCP transport, TB interval {args.tb_interval:.2f}s, heartbeat "
          f"every {args.heartbeat:.2f}s.\n")
    takeover = summary.get("takeover") or {}
    recovery = summary.get("hardware_recovery") or {}
    print(f"  kill -9 {active_id:15s}: {summary.get('active_killed')}")
    print(f"  shadow takeover        : decision={takeover.get('decision')} "
          f"incarnation={takeover.get('incarnation')} "
          f"suppressed-log-resent={takeover.get('log_suppressed')}")
    print(f"  peer adopted takeover  : {bool(summary.get('peer_adopted'))}")
    print(f"  kill -9 {peer_id:15s}: {summary.get('peer_killed')}")
    print(f"  hardware recovery      : line={recovery.get('line')} "
          f"boundary={recovery.get('boundary')} "
          f"incarnation={recovery.get('incarnation')}")
    print(f"  peer rolled back       : {summary.get('peer_rolled_back')}")
    print(f"  decisions per process  : {summary.get('decisions')}")
    print(f"\nartifacts in {harness.workdir} (decision traces, agent logs, "
          f"demo_summary.json)")
    ok = bool(summary.get("ok"))
    print(f"demo {'PASSED' if ok else 'FAILED'}")
    return 0 if ok else 1


def _cmd_live_crosscheck(args) -> int:
    from .runtime.crosscheck import run_crosscheck
    from .runtime.script import smoke_script

    script = smoke_script() if args.smoke else None
    result = run_crosscheck(seed=args.seed, script=script,
                            workdir=args.workdir, topology=args.topology)
    summary = result.summary()
    print(f"cross-backend check, seed {args.seed}, "
          f"topology {result.topology}: "
          f"{summary['ops']} scripted ops "
          f"({'smoke' if args.smoke else 'standard'} script)")
    for process, count in sorted(summary["decisions_per_process"].items()):
        print(f"  {process:8s} {count} decisions")
    for diff in result.differences:
        print(f"  DIFF: {diff}")
    print(f"equivalent: {result.equivalent}")
    return 0 if result.equivalent else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Synergistic Coordination between "
                    "Software and Hardware Fault Tolerance Techniques' "
                    "(DSN 2001)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("scenarios", help="reproduce Figures 1, 2, 3, 4 and 6"
                   ).set_defaults(fn=_cmd_scenarios)

    def add_campaign_args(p, cache: bool = True) -> None:
        p.add_argument("--seed", type=int, default=None,
                       help="master seed for the campaign")
        p.add_argument("--replications", type=int, default=None,
                       help="replications per configuration")
        p.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: serial)")
        if cache:
            p.add_argument("--no-cache", action="store_true",
                           help="recompute instead of reading the "
                                "on-disk result cache")

    fig7 = sub.add_parser("fig7", help="reproduce Figure 7 (rollback sweep)")
    fig7.add_argument("--full", action="store_true",
                      help="publication-sized sweep")
    add_campaign_args(fig7)
    fig7.set_defaults(fn=_cmd_fig7)

    table1 = sub.add_parser("table1", help="reproduce Table 1 (TB comparison)")
    table1.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: serial)")
    table1.set_defaults(fn=_cmd_table1)

    overhead = sub.add_parser("overhead", help="performance cost by scheme")
    add_campaign_args(overhead, cache=False)
    overhead.set_defaults(fn=_cmd_overhead)

    tsweep = sub.add_parser(
        "topology-sweep",
        help="coordinated-scheme overhead vs system size (N x K topologies)")
    tsweep.add_argument("--seed", type=int, default=None,
                        help="master seed for the sweep")
    tsweep.add_argument("--horizon", type=float, default=None,
                        help="simulated seconds per topology")
    tsweep.add_argument("--topologies", default=None,
                        help="comma-separated specs, e.g. "
                             "'paper,2x2+3,4x4+5' (default sweep: "
                             "3, 9 and 25 processes)")
    tsweep.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: serial)")
    tsweep.set_defaults(fn=_cmd_topology_sweep)

    ablations = sub.add_parser("ablations", help="design-choice ablations")
    ablations.add_argument("--full", action="store_true")
    add_campaign_args(ablations)
    ablations.set_defaults(fn=_cmd_ablations)

    sub.add_parser("report", help="regenerate the full reproduction "
                   "report in one run").set_defaults(fn=_cmd_report)

    bench_kernel = sub.add_parser(
        "bench-kernel",
        help="measure event-kernel throughput vs the pinned seed kernel "
             "and verify representation-knob determinism")
    bench_kernel.add_argument("--json", metavar="PATH", default=None,
                              help="write BENCH_kernel.json-style record "
                                   "to PATH")
    bench_kernel.add_argument("--events", type=int, default=None,
                              help="microbench event count")
    bench_kernel.add_argument("--horizon", type=float, default=None,
                              help="campaign horizon (seconds)")
    bench_kernel.add_argument("--repeats", type=int, default=3,
                              help="timing repetitions (best-of)")
    bench_kernel.add_argument("--quick", action="store_true",
                              help="small sizes for a smoke run")
    bench_kernel.set_defaults(fn=_cmd_bench_kernel)

    bench_warm = sub.add_parser(
        "bench-warmstart",
        help="measure warm-start prefix-resume speedup vs cold replay "
             "and verify findings / shrink / trace-digest equivalence")
    bench_warm.add_argument("--json", metavar="PATH", default=None,
                            help="write BENCH_warmstart.json-style record "
                                 "to PATH")
    bench_warm.add_argument("--horizon", type=float, default=None,
                            help="bench campaign horizon (seconds)")
    bench_warm.add_argument("--golden", metavar="PATH", default=None,
                            help="pinned golden digests path override")
    bench_warm.set_defaults(fn=_cmd_bench_warmstart)

    bench_fab = sub.add_parser(
        "bench-fabric",
        help="measure fabric campaign scaling vs serial execution and "
             "verify result-digest equivalence and once-only image-set "
             "transfers")
    bench_fab.add_argument("--json", metavar="PATH", default=None,
                           help="write BENCH_fabric.json-style record "
                                "to PATH")
    bench_fab.add_argument("--schedules", type=int, default=None,
                           help="bench campaign schedule count")
    bench_fab.add_argument("--horizon", type=float, default=None,
                           help="bench campaign horizon (seconds)")
    bench_fab.add_argument("--workers", type=int, default=None,
                           help="fabric worker count (default: usable "
                                "CPUs clamped to [2, 4])")
    bench_fab.set_defaults(fn=_cmd_bench_fabric)

    snapstats = sub.add_parser(
        "snapshot-stats",
        help="run a short seeded scenario and print the per-section "
             "checkpoint byte table")
    snapstats.add_argument("--scheme", default="coordinated",
                           choices=["mdcd-only", "coordinated", "naive",
                                    "write-through"])
    snapstats.add_argument("--seed", type=int, default=7)
    snapstats.add_argument("--horizon", type=float, default=3_000.0)
    from .snapshot import available_codecs
    snapstats.add_argument("--codec", default="pickle",
                           choices=sorted(available_codecs()),
                           help="snapshot codec for both stores")
    snapstats.add_argument("--full-snapshots", action="store_true",
                           help="disable incremental (delta) capture")
    snapstats.set_defaults(fn=_cmd_snapshot_stats)

    timeline = sub.add_parser(
        "timeline", help="render a Fig. 1/3-style execution timeline")
    timeline.add_argument("--scheme", default="coordinated",
                          choices=["mdcd-only", "coordinated", "naive",
                                   "write-through"])
    timeline.add_argument("--seed", type=int, default=11)
    timeline.add_argument("--width", type=int, default=100)
    timeline.set_defaults(fn=_cmd_timeline)

    live_demo = sub.add_parser(
        "live-demo",
        help="three real OS processes over TCP: kill -9 the active, "
             "watch the shadow take over, then recover the peer from "
             "file-backed stable storage")
    live_demo.add_argument("--seed", type=int, default=0)
    live_demo.add_argument("--tb-interval", type=float, default=0.8,
                           help="real-time TB checkpoint interval (s)")
    live_demo.add_argument("--heartbeat", type=float, default=0.15,
                           help="heartbeat period (s)")
    live_demo.add_argument("--timeout", type=float, default=0.75,
                           help="failure-detector timeout (s)")
    live_demo.add_argument("--deadline", type=float, default=90.0,
                           help="abort (and kill all agents) after this long")
    live_demo.add_argument("--workdir", default=None,
                           help="artifact directory (default: a fresh tempdir)")
    live_demo.set_defaults(fn=_cmd_live_demo)

    live_cross = sub.add_parser(
        "live-crosscheck",
        help="run the scripted workload on the discrete-event backend "
             "and on real processes; diff the decision traces")
    live_cross.add_argument("--seed", type=int, default=0)
    live_cross.add_argument("--smoke", action="store_true",
                            help="short crash-free script instead of the "
                                 "standard crash+recovery script")
    live_cross.add_argument("--workdir", default=None,
                            help="live artifact directory (default: tempdir)")
    live_cross.add_argument("--topology", default="paper",
                            help="membership to spawn: 'paper' or 'NxK'/"
                                 "'NxK+U' (one OS process per member)")
    live_cross.set_defaults(fn=_cmd_live_crosscheck)

    demo = sub.add_parser("demo", help="one narrated coordinated run")
    demo.add_argument("--seed", type=int, default=5)
    demo.set_defaults(fn=_cmd_demo)

    audit = sub.add_parser(
        "audit",
        help="adversarial schedule audit: explore fault/timing schedules "
             "under online invariant checking and shrink any violation "
             "to a minimal replayable counterexample")
    audit.add_argument("--scheme", default="coordinated",
                       choices=["naive", "coordinated",
                                "coordinated-no-swap"])
    audit.add_argument("--seed", type=int, default=7,
                       help="campaign master seed")
    audit.add_argument("--schedules", type=int, default=120,
                       help="number of schedules to explore")
    audit.add_argument("--horizon", type=float, default=600.0,
                       help="simulated seconds per schedule")
    audit.add_argument("--topology", default="paper",
                       help="membership under audit: 'paper' or 'NxK'/"
                            "'NxK+U' (N components x K shadows + U peers)")
    audit.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: serial)")
    audit.add_argument("--shrink", action="store_true",
                       help="delta-debug violating schedules to minimal "
                            "counterexamples")
    audit.add_argument("--out", metavar="PATH", default=None,
                       help="write the campaign report (violations + "
                            "shrunk schedules) as a replayable JSON "
                            "artifact")
    audit.add_argument("--replay", metavar="PATH", default=None,
                       help="replay the counterexamples of an artifact "
                            "instead of running a campaign")
    audit.add_argument("--mutation", default=None,
                       choices=["skip-pseudo-dirty", "drop-unacked-save",
                                "skip-blocking"],
                       help="plant the named protocol bug and run the "
                            "mutation-sensitivity campaign")
    audit.add_argument("--warmstart", action="store_true",
                       help="execute schedules by prefix-resume from "
                            "full-system reference images (shared "
                            "campaign seed; identical findings, less "
                            "wall-clock)")
    audit.add_argument("--flock", action="store_true",
                       help="suffix-fork batch execution: one resident "
                            "template per prefix group, forked per "
                            "schedule (combine with --warmstart to thaw "
                            "templates from images; identical findings)")
    audit.add_argument("--fork-batch", type=int, default=32,
                       help="flock shard size: prefix groups larger than "
                            "this split across workers")
    audit.add_argument("--expect-violation", action="store_true",
                       help="exit 0 iff the audit FOUND violations "
                            "(naive-scheme and mutation CI)")
    audit.add_argument("--expect-clean", action="store_true",
                       help="exit 0 iff the audit found nothing (the "
                            "default; spelled out for CI readability)")
    audit.add_argument("--fabric", type=int, default=None, metavar="N",
                       help="dispatch over the multi-host campaign fabric, "
                            "spawning N local worker processes (0: serve "
                            "externally-started workers only)")
    audit.add_argument("--journal", metavar="PATH", default=None,
                       help="fabric dispatch journal (enables kill -9 "
                            "resume of the supervisor)")
    audit.add_argument("--cas-dir", metavar="DIR", default=None,
                       help="fabric content-addressed store directory "
                            "(image-set blobs dedup across campaigns)")
    audit.set_defaults(fn=_cmd_audit)

    fsup = sub.add_parser(
        "fabric-supervisor",
        help="serve one audit campaign to fabric workers over TCP "
             "(work-stealing dispatch, journaled kill -9 resume)")
    fsup.add_argument("--scheme", default="coordinated",
                      choices=["naive", "coordinated", "coordinated-no-swap"])
    fsup.add_argument("--seed", type=int, default=7)
    fsup.add_argument("--schedules", type=int, default=120)
    fsup.add_argument("--horizon", type=float, default=600.0)
    fsup.add_argument("--topology", default="paper")
    fsup.add_argument("--warmstart", action="store_true",
                      help="warm execution mode (image sets ship through "
                           "the content-addressed store)")
    fsup.add_argument("--flock", action="store_true",
                      help="suffix-fork execution mode on each worker")
    fsup.add_argument("--fork-batch", type=int, default=32)
    fsup.add_argument("--shrink", action="store_true")
    fsup.add_argument("--host", default="0.0.0.0",
                      help="bind address for worker connections")
    fsup.add_argument("--port", type=int, default=7707,
                      help="bind port (0: ephemeral, printed at startup)")
    fsup.add_argument("--shard-size", type=int, default=16,
                      help="schedules per dispatched shard")
    fsup.add_argument("--heartbeat-timeout", type=float, default=2.0,
                      help="seconds of silence before a worker is declared "
                           "dead and its shards requeue")
    fsup.add_argument("--spawn-workers", type=int, default=0, metavar="N",
                      help="also spawn N local workers (default: external "
                           "workers only)")
    fsup.add_argument("--journal", metavar="PATH", default=None,
                      help="dispatch journal for crash-resume")
    fsup.add_argument("--cas-dir", required=True, metavar="DIR",
                      help="content-addressed store directory")
    fsup.add_argument("--out", metavar="PATH", default=None,
                      help="write the campaign report artifact")
    fsup.add_argument("--expect-violation", action="store_true")
    fsup.set_defaults(fn=_cmd_fabric_supervisor)

    fwork = sub.add_parser(
        "fabric-worker",
        help="per-host worker agent: pull shards from a fabric "
             "supervisor, execute locally, cache image sets in a "
             "content-addressed store")
    fwork.add_argument("--connect", required=True, metavar="HOST:PORT",
                       help="the supervisor to pull work from")
    fwork.add_argument("--cas-dir", required=True, metavar="DIR",
                       help="local content-addressed cache (persists "
                            "across campaigns: each image set transfers "
                            "to this host at most once, ever)")
    fwork.add_argument("--name", default=None,
                       help="stable worker name (default: host-pid)")
    fwork.add_argument("--once", action="store_true",
                       help="exit after one completed campaign")
    fwork.add_argument("--retry-delay", type=float, default=0.5,
                       help="seconds between reconnect attempts")
    fwork.add_argument("--connect-timeout", type=float, default=None,
                       help="give up if no supervisor is reachable for "
                            "this long (default: retry forever)")
    fwork.set_defaults(fn=_cmd_fabric_worker)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
