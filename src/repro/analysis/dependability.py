"""Dependability quantification (the paper's stated follow-up work).

Turns the rollback-distance results into the quantity an operator cares
about: the fraction of computation lost to faults.  Every fault costs
the repair outage (hardware only) plus the re-execution of the undone
work (the rollback distance); a software fault additionally costs its
detection latency (work done after activation is contaminated and
discarded by the recovery).

    loss_rate = lambda_hw * (t_repair + E[D_hw])
              + lambda_sw * (E[latency_detect] + E[D_sw])

``goodput = 1 - loss_rate`` is the long-run fraction of time spent on
work that survives.  The model composes with
:mod:`repro.analysis.model`'s per-scheme ``E[D_hw]`` predictions, and
:func:`measure_goodput` extracts the same quantity from a simulated
system for validation.
"""

from __future__ import annotations

import dataclasses

from ..errors import ConfigurationError
from .model import ModelParams, expected_rollback_coordinated, \
    expected_rollback_write_through


@dataclasses.dataclass(frozen=True)
class FaultLoad:
    """Fault intensities and costs.

    Rates are per second of operation; times in seconds.
    """

    hw_rate: float = 0.0
    repair_time: float = 0.0
    sw_rate: float = 0.0
    sw_detection_latency: float = 0.0
    sw_rollback: float = 0.0

    def __post_init__(self) -> None:
        for name in ("hw_rate", "repair_time", "sw_rate",
                     "sw_detection_latency", "sw_rollback"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")


def loss_rate(load: FaultLoad, e_hw_rollback: float) -> float:
    """Long-run fraction of time lost to fault handling."""
    hw = load.hw_rate * (load.repair_time + e_hw_rollback)
    sw = load.sw_rate * (load.sw_detection_latency + load.sw_rollback)
    return hw + sw


def goodput(load: FaultLoad, e_hw_rollback: float) -> float:
    """Long-run fraction of time producing surviving work (clamped
    to [0, 1]; a loss rate above 1 means the system cannot keep up)."""
    return max(0.0, 1.0 - loss_rate(load, e_hw_rollback))


def goodput_comparison(params: ModelParams, load: FaultLoad) -> dict:
    """Model-predicted goodput of the coordinated scheme vs the
    write-through baseline under the same fault load."""
    co = goodput(load, expected_rollback_coordinated(params))
    wt = goodput(load, expected_rollback_write_through(params))
    return {"coordinated": co, "write-through": wt,
            "goodput_gain": co - wt}


def measure_goodput(system, horizon: float) -> float:
    """Measured goodput of a completed run: surviving progress over
    elapsed time, averaged across in-service processes.

    A process's ``progress`` is rewound by every rollback, so
    ``progress / horizon`` is exactly the surviving-work fraction
    (crash outages show up as progress that never accrued).
    """
    processes = [p for p in system.process_list() if not p.deposed]
    if not processes or horizon <= 0:
        return 0.0
    return sum(p.progress for p in processes) / (horizon * len(processes))
