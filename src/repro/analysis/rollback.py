"""Rollback-distance instrumentation (the Figure 7 metric).

Rollback distance is "the amount of computation quantified in time
units (seconds) that a process must undo due to a hardware fault".
Every :meth:`repro.host.FtProcess.restore_from` records a
``recovery.rollback.<reason>`` trace entry with the distance; the
hardware recovery coordinator additionally keeps structured
:class:`~repro.tb.hardware_recovery.RollbackRecord` rows.  This module
aggregates either source into the statistics the experiments report.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.monitor import RunningStat
from ..sim.trace import TraceRecorder
from ..types import ProcessId


def hardware_rollback_distances(trace: TraceRecorder,
                                process: Optional[ProcessId] = None) -> List[float]:
    """Distances of every hardware rollback in a trace."""
    return [rec.data["distance"]
            for rec in trace.records("recovery.rollback.hardware", process)]


def software_rollback_distances(trace: TraceRecorder,
                                process: Optional[ProcessId] = None) -> List[float]:
    """Distances of every software (MDCD) rollback in a trace."""
    return [rec.data["distance"]
            for rec in trace.records("recovery.rollback.software", process)]


def rollback_stat(system, reason: str = "hardware",
                  process: Optional[ProcessId] = None) -> RunningStat:
    """A :class:`~repro.sim.monitor.RunningStat` over a system's
    recorded rollback distances."""
    stat = RunningStat()
    for rec in system.trace.records(f"recovery.rollback.{reason}", process):
        stat.add(rec.data["distance"])
    return stat


def per_process_rollback_stats(system, reason: str = "hardware"
                               ) -> Dict[ProcessId, RunningStat]:
    """Per-process rollback statistics."""
    stats: Dict[ProcessId, RunningStat] = {}
    for rec in system.trace.records(f"recovery.rollback.{reason}"):
        stats.setdefault(rec.process, RunningStat()).add(rec.data["distance"])
    return stats
