"""Executable versions of the paper's global-state properties.

Section 2.1 defines (validity-concerned) **consistency** and
**recoverability** over a global state ``S``:

* *Consistency* — a message reflected as received must be reflected as
  sent, and both ends must agree on its validity.
* *Recoverability* — a message reflected as sent must be reflected as
  received with agreeing validity views, **or** the error recovery
  algorithm must be able to restore it.

The checkers run over a line of :class:`~repro.analysis.global_state.ProcessView`
objects.  "Reflected" is literal: a message is in a view iff it is in
the snapshot's sent/received journal.  Restorability recognises the two
mechanisms the protocols actually have:

* the TB protocols re-send every message in the sender's snapshotted
  unacknowledged set;
* a sender whose snapshot *precedes* the send re-executes and
  regenerates the message (so such messages are simply absent from the
  global state and need no restoring).

A third, ground-truth check audits the protocol's conservatism: a
snapshot whose dirty bit is 0 must not be actually contaminated
(guaranteed when the acceptance test has perfect coverage).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Set

from ..errors import InvariantViolation
from ..journal import JournalRecord
from ..messages.message import DEVICE
from ..types import MessageKind, ProcessId
from .global_state import ProcessView


@dataclasses.dataclass(frozen=True)
class Violation:
    """One invariant violation found in a line."""

    kind: str
    detail: str
    message_key: Optional[int] = None
    process: Optional[ProcessId] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.kind}] {self.detail}"


#: Violation kinds emitted by the checkers.
ORPHAN_MESSAGE = "orphan-message"
VALIDITY_MISMATCH = "validity-mismatch"
UNRESTORABLE_MESSAGE = "unrestorable-message"
UNDETECTED_CONTAMINATION = "undetected-contamination"
PSEUDO_CONTAMINATION = "pseudo-undetected-contamination"

#: Safety margin when comparing a record's timestamp against the other
#: end's pruning horizon.  The two ends stamp the *same* message at
#: different instants (receive time lags send time by the delivery delay
#: plus, for a buffered delivery, a whole blocking period), and prune at
#: different instants, so the horizon comparison needs slack.  Must
#: exceed ``t_max`` + the longest blocking period and stay far below the
#: journal retention window; 5 s is comfortable for every configuration
#: in this repository.
PRUNE_SLACK = 5.0


def check_consistency(line: Dict[ProcessId, ProcessView],
                      exempt_receivers: Iterable[ProcessId] = (),
                      include_validity_views: bool = True) -> List[Violation]:
    """Consistency: no received-but-never-sent (orphan) messages, and
    agreeing validity views on messages present at both ends.

    ``exempt_receivers`` — see :func:`check_recoverability`: views held
    by the always-suspect ``P1_act`` about its *own inbound* traffic are
    not recovery-relevant (its state is never a recovery basis), so
    callers modelling the paper's system pass ``{P1_act}``.

    ``include_validity_views=False`` skips the view-agreement check —
    appropriate for *live* states, where a validation notification still
    in flight makes the two ends' views legitimately, transiently
    different (the paper's property is about recovery lines).
    """
    exempt = set(exempt_receivers)
    violations: List[Violation] = []
    for pid, view in line.items():
        for rec in view.snapshot.journal_recv.records():
            sender_view = line.get(rec.sender)
            if sender_view is None:
                continue  # sender outside the line (e.g. deposed)
            if pid in exempt:
                continue
            sent_rec = sender_view.snapshot.journal_sent.get(rec.key)
            if sent_rec is None:
                if getattr(rec, "dsn", None) is not None:
                    # Replay-protected (generalized protocol): the
                    # sender's snapshot precedes the send, and its
                    # piecewise-deterministic re-execution regenerates
                    # the identical (sender, receiver, dsn) message,
                    # which this receiver deduplicates — the "sent"
                    # side re-materializes during recovery.
                    continue
                sender_horizon = sender_view.snapshot.journal_sent.pruned_before
                if (rec.validated and sender_horizon > 0.0
                        and rec.time - PRUNE_SLACK < sender_horizon):
                    # The sender garbage-collected this old validated
                    # record; both ends agreed on validity when it was
                    # pruned (only validated records are pruned).
                    continue
                violations.append(Violation(
                    kind=ORPHAN_MESSAGE, message_key=rec.key, process=pid,
                    detail=(f"{pid} reflects message {rec.key} from {rec.sender} "
                            f"as received, but {rec.sender}'s state does not "
                            f"reflect sending it")))
                continue
            if include_validity_views and sent_rec.validated != rec.validated:
                violations.append(Violation(
                    kind=VALIDITY_MISMATCH, message_key=rec.key, process=pid,
                    detail=(f"message {rec.key} {rec.sender}->{pid}: sender view "
                            f"validated={sent_rec.validated}, receiver view "
                            f"validated={rec.validated}")))
    return violations


def check_recoverability(line: Dict[ProcessId, ProcessView],
                         exempt_receivers: Iterable[ProcessId] = (),
                         guarded_active: Optional[ProcessId] = None,
                         shadow_vr: Optional[int] = None,
                         in_flight_keys: Iterable[int] = (),
                         guarded_map: Optional[Dict[ProcessId,
                                                    Optional[int]]] = None) -> List[Violation]:
    """Recoverability: every sent-but-not-received message must be
    restorable by the recovery machinery.

    Restoration mechanisms recognised:

    * the sender's snapshotted unacknowledged set (TB re-send);
    * for ``guarded_active``'s messages: the shadow's suppressed-message
      log and lock-step re-execution — the shadow re-sends (or
      regenerates) every component-1 message with sequence number beyond
      the valid message register, so a lost ``P1_act`` message with
      ``sn > shadow_vr`` is restorable by takeover (this is exactly the
      "or the error recovery algorithm must be able to restore m" arm of
      the paper's definition);
    * senders whose snapshot *precedes* the send re-execute and
      regenerate the message (such messages are simply absent from the
      global state — nothing to check).

    ``exempt_receivers`` lists processes whose *incoming* message loss
    is tolerated by construction — the always-suspect ``P1_act``: its
    state is never a recovery basis for software errors, and any
    divergence it accumulates is covered by the shadow (see DESIGN.md,
    "known corner cases").  Callers that want the strict property pass
    nothing.

    ``guarded_map`` is the N-component form of the shadow-log arm: each
    guarded active's process id mapped to its component's valid message
    register (the scalar ``guarded_active``/``shadow_vr`` pair is merged
    into it, so the paper's callers are a special case).
    """
    exempt = set(exempt_receivers)
    wire = set(in_flight_keys)
    guarded: Dict[ProcessId, Optional[int]] = dict(guarded_map or {})
    if guarded_active is not None:
        guarded[guarded_active] = shadow_vr
    violations: List[Violation] = []
    for pid, view in line.items():
        unacked_keys = {m.dedup_key for m in view.snapshot.unacked}
        for rec in view.snapshot.journal_sent.records():
            if rec.receiver == DEVICE:
                continue  # external messages leave the system
            receiver_view = line.get(rec.receiver)
            if receiver_view is None:
                continue  # receiver outside the line
            if rec.key in receiver_view.snapshot.journal_recv:
                continue  # reflected on both ends; consistency covers views
            receiver_horizon = receiver_view.snapshot.journal_recv.pruned_before
            if receiver_horizon > 0.0 and rec.time - PRUNE_SLACK < receiver_horizon:
                continue  # receiver may have garbage-collected the record
            if rec.key in unacked_keys:
                continue  # restorable: saved with the checkpoint, re-sent
            if rec.key in wire:
                continue  # literally in transit (live-state checks only)
            if rec.receiver in exempt:
                continue
            if pid in guarded:
                vr = guarded[pid]
                if rec.sn is None or vr is None or rec.sn > vr:
                    continue  # restorable by a shadow's log / re-execution
            violations.append(Violation(
                kind=UNRESTORABLE_MESSAGE, message_key=rec.key, process=pid,
                detail=(f"message {rec.key} {pid}->{rec.receiver} is reflected "
                        f"as sent (and acknowledged) but not as received, and "
                        f"is not in the sender's saved unacknowledged set")))
    return violations


def check_ground_truth(line: Dict[ProcessId, ProcessView]) -> List[Violation]:
    """Conservatism audit: a snapshot believed clean (dirty bit 0) must
    not be actually contaminated.  Holds whenever acceptance-test
    coverage is 1.0; coverage ablations expect violations here."""
    violations: List[Violation] = []
    for pid, view in line.items():
        if view.dirty_bit == 0 and view.truly_corrupt:
            violations.append(Violation(
                kind=UNDETECTED_CONTAMINATION, process=pid,
                detail=(f"{pid}'s snapshot claims a clean state (dirty bit 0) "
                        f"but the application state is contaminated")))
    return violations


def check_pseudo_conservatism(line: Dict[ProcessId, ProcessView],
                              guarded_active: ProcessId) -> List[Violation]:
    """Conservatism of the *pseudo* dirty bit (modified MDCD only).

    Paper footnote 2: for ``P1_act`` the pseudo dirty bit substitutes
    for the dirty bit in the adapted TB protocol's ``write_disk``
    decision.  A ``current-state`` stable checkpoint is therefore the
    protocol claiming the captured state was validated — so, with
    perfect acceptance-test coverage, it must not be contaminated.  (The
    plain dirty-bit conservatism check of :func:`check_ground_truth`
    never fires for ``P1_act``, whose dirty bit is constant 1 during
    guarded operation.)

    Only meaningful for schemes running the modified protocol: the
    original MDCD has no pseudo bit, and its stale 0 value would make
    this check misfire — callers gate on ``scheme.uses_modified_mdcd``.
    """
    view = line.get(guarded_active)
    if view is None or view.content != "current-state":
        return []
    mdcd = view.snapshot.mdcd
    if not mdcd.guarded or view.meta.get("genesis"):
        return []
    if mdcd.pseudo_dirty_bit == 0 and view.truly_corrupt:
        return [Violation(
            kind=PSEUDO_CONTAMINATION, process=guarded_active,
            detail=(f"{guarded_active}'s current-state stable checkpoint "
                    f"claims a validated state (pseudo dirty bit 0) but the "
                    f"application state is contaminated"))]
    return []


def check_line(line: Dict[ProcessId, ProcessView],
               exempt_receivers: Iterable[ProcessId] = (),
               guarded_active: Optional[ProcessId] = None,
               shadow_vr: Optional[int] = None,
               include_ground_truth: bool = True) -> List[Violation]:
    """Run all checks over a line."""
    violations = check_consistency(line, exempt_receivers=exempt_receivers)
    violations += check_recoverability(line, exempt_receivers=exempt_receivers,
                                       guarded_active=guarded_active,
                                       shadow_vr=shadow_vr)
    if include_ground_truth:
        violations += check_ground_truth(line)
    return violations


def check_system_line(line: Dict[ProcessId, ProcessView],
                      include_ground_truth: bool = True,
                      pseudo_conservatism: bool = False) -> List[Violation]:
    """:func:`check_line` specialised to the paper's three-process
    system: the always-suspect ``P1_act`` is the exempt receiver and the
    shadow-log restorability arm is wired to the shadow's valid message
    register as captured in the line itself.

    ``pseudo_conservatism`` additionally runs
    :func:`check_pseudo_conservatism` — pass it only for schemes running
    the modified MDCD (see that checker's docstring).
    """
    from ..types import Role
    active = ProcessId(Role.ACTIVE_1.value)
    shadow = line.get(ProcessId(Role.SHADOW_1.value))
    shadow_vr = shadow.snapshot.mdcd.vr if shadow is not None else None
    violations = check_line(line, exempt_receivers=[active],
                            guarded_active=active, shadow_vr=shadow_vr,
                            include_ground_truth=include_ground_truth)
    if pseudo_conservatism and include_ground_truth:
        violations += check_pseudo_conservatism(line, guarded_active=active)
    return violations


def _topology_guarded_map(line: Dict[ProcessId, ProcessView],
                          topology) -> Dict[ProcessId, Optional[int]]:
    """Per-active valid-message-register bounds, from the line itself.

    Each guarded active maps to the *minimum* of its shadows' VRs (a
    message beyond a shadow's VR sits in that shadow's suppressed log or
    is regenerated by its re-execution, so the lowest register is the
    bound every potential successor can restore past); any shadow with
    no validation yet (``VR = None``) makes everything restorable."""
    guarded: Dict[ProcessId, Optional[int]] = {}
    for active in topology.actives():
        vrs = []
        for spec in topology.shadows_of(active.component):
            view = line.get(ProcessId(spec.role_id))
            if view is None:
                continue
            vrs.append(view.snapshot.mdcd.vr)
        if not vrs or any(vr is None for vr in vrs):
            guarded[ProcessId(active.role_id)] = None
        else:
            guarded[ProcessId(active.role_id)] = min(vrs)
    return guarded


def check_topology_system_line(line: Dict[ProcessId, ProcessView],
                               topology,
                               include_ground_truth: bool = True,
                               pseudo_conservatism: bool = False) -> List[Violation]:
    """:func:`check_line` generalised to an N-component
    :class:`~repro.topology.model.Topology`: every low-confidence
    active is an exempt receiver, and the shadow-log restorability arm
    runs per component against the VRs captured in the line.  On the
    paper topology this is exactly :func:`check_system_line`."""
    exempt = [ProcessId(rid) for rid in topology.exempt_role_ids()]
    guarded = _topology_guarded_map(line, topology)
    violations = check_consistency(line, exempt_receivers=exempt)
    violations += check_recoverability(line, exempt_receivers=exempt,
                                       guarded_map=guarded)
    if include_ground_truth:
        violations += check_ground_truth(line)
        if pseudo_conservatism:
            for pid in guarded:
                violations += check_pseudo_conservatism(
                    line, guarded_active=pid)
    return violations


def check_live_topology(system, include_ground_truth: bool = True) -> List[Violation]:
    """:func:`check_live_system` generalised to the system's topology
    (falls through to the paper-specialised checker on the paper
    shape, keeping that path byte-identical)."""
    topology = getattr(system, "topology", None)
    if topology is None or topology.is_paper:
        return check_live_system(system,
                                 include_ground_truth=include_ground_truth)
    from .global_state import live_line
    line = live_line(system)
    wire = {m.dedup_key for m in system.network.in_flight()}
    for proc in system.process_list():
        wire.update(m.dedup_key for m in proc._buffer)
    exempt = [ProcessId(rid) for rid in topology.exempt_role_ids()]
    guarded = _topology_guarded_map(line, topology)
    violations = check_consistency(line, exempt_receivers=exempt,
                                   include_validity_views=False)
    violations += check_recoverability(line, exempt_receivers=exempt,
                                       guarded_map=guarded,
                                       in_flight_keys=wire)
    if include_ground_truth:
        violations += check_ground_truth(line)
    return violations


def check_live_system(system, include_ground_truth: bool = True) -> List[Violation]:
    """Audit a system's *live* states (not a checkpoint line).

    The live global state differs from a checkpoint line in exactly one
    way: a sent-but-not-received message may be legitimately on the wire
    or held in a blocking buffer / deferred-ack stash.  This helper
    captures the live views, exempts those in-flight messages, and runs
    the standard checks — so live consistency can be asserted at any
    instant of a healthy run.
    """
    from ..types import Role
    from .global_state import live_line
    line = live_line(system)
    wire = {m.dedup_key for m in system.network.in_flight()}
    for proc in system.process_list():
        wire.update(m.dedup_key for m in proc._buffer)
    active = ProcessId(Role.ACTIVE_1.value)
    shadow = line.get(ProcessId(Role.SHADOW_1.value))
    shadow_vr = shadow.snapshot.mdcd.vr if shadow is not None else None
    violations = check_consistency(line, exempt_receivers=[active],
                                   include_validity_views=False)
    violations += check_recoverability(
        line, exempt_receivers=[active], guarded_active=active,
        shadow_vr=shadow_vr, in_flight_keys=wire)
    if include_ground_truth:
        violations += check_ground_truth(line)
    return violations


def assert_line_ok(line: Dict[ProcessId, ProcessView],
                   exempt_receivers: Iterable[ProcessId] = (),
                   include_ground_truth: bool = True,
                   label: str = "") -> None:
    """Strict mode: raise :class:`~repro.errors.InvariantViolation` if
    any check fails."""
    violations = check_line(line, exempt_receivers=exempt_receivers,
                            include_ground_truth=include_ground_truth)
    if violations:
        summary = "; ".join(str(v) for v in violations[:5])
        raise InvariantViolation(
            f"{len(violations)} violation(s) in line {label or '<unnamed>'}: {summary}",
            violations=violations)


def summarize_violations(violations: List[Violation]) -> Dict[str, int]:
    """Count violations by kind (for reports)."""
    counts: Dict[str, int] = {}
    for v in violations:
        counts[v.kind] = counts.get(v.kind, 0) + 1
    return counts
