"""Global-state capture: turning checkpoint lines into checkable views.

A *line* is one checkpoint per in-service process — the state the system
would restart from.  :class:`ProcessView` decodes a checkpoint (through
the codec registry of :mod:`repro.snapshot`, replaying any delta
chains) into the underlying :class:`~repro.host.ProcessSnapshot` plus
the metadata the invariant checkers need (epoch, dirty bit at snapshot
time, ground-truth corruption, the per-section byte breakdown).  Lines
can be built from stable storage (the hardware recovery line), from
volatile storage (the MDCD recovery anchors), or from the live process
states (for end-of-run oracles).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..checkpoint import Checkpoint
from ..host import FtProcess, ProcessSnapshot
from ..types import ProcessId


@dataclasses.dataclass
class ProcessView:
    """One process's state as reflected by one snapshot."""

    process_id: ProcessId
    snapshot: ProcessSnapshot
    taken_at: float
    work_done: float
    epoch: Optional[int] = None
    kind: Optional[str] = None
    #: Stable-content case of the source checkpoint (``"current-state"``
    #: / ``"volatile-copy"``), ``None`` for volatile and live views.
    content: Optional[str] = None
    meta: Dict = dataclasses.field(default_factory=dict)
    #: Accounted bytes per snapshot section of the source checkpoint
    #: (empty for live views, which never encode).
    section_bytes: Dict[str, int] = dataclasses.field(default_factory=dict)

    @property
    def dirty_bit(self) -> int:
        """The dirty bit *inside* the snapshot (the knowledge the
        restored process would wake up with)."""
        return self.snapshot.mdcd.dirty_bit

    @property
    def truly_corrupt(self) -> bool:
        """Ground truth: is the snapshotted application state actually
        contaminated?"""
        return self.snapshot.app_state.corrupt


#: Optional view memo, installed by flock group execution: checkpoints
#: shared across a group's forks (the whole pre-fork prefix) decode to
#: a view once instead of once per fork.  Entries pin the checkpoint
#: with a strong reference so an ``id`` can never be reused while it is
#: a key.  Views are read-only by contract (checkers only inspect
#: them), which is what makes returning a shared instance sound.
_VIEW_CACHE: Optional[Dict[int, tuple]] = None

#: In-flock bound on memoized views (suffix checkpoints enter the cache
#: too; they just never hit again, so the cache is periodically swept).
_VIEW_CACHE_MAX = 4096


def install_view_cache(cache: Optional[Dict[int, tuple]]) -> None:
    """Install (or, with ``None``, remove) the process-wide view memo.

    Only flock group execution installs one — for exactly the span of
    one group, whose forks share their prefix checkpoints."""
    global _VIEW_CACHE
    _VIEW_CACHE = cache


def view_from_checkpoint(checkpoint: Checkpoint) -> ProcessView:
    """Decode a checkpoint into a view (codec-registry lookup plus
    delta-chain replay happen inside ``restore_state``)."""
    cache = _VIEW_CACHE
    if cache is not None:
        entry = cache.get(id(checkpoint))
        if entry is not None and entry[0] is checkpoint:
            return entry[1]
    view = ProcessView(
        process_id=checkpoint.process_id,
        snapshot=checkpoint.restore_state(),
        taken_at=checkpoint.taken_at,
        work_done=checkpoint.work_done,
        epoch=checkpoint.epoch,
        kind=checkpoint.kind.value,
        content=(checkpoint.content.value
                 if checkpoint.content is not None else None),
        meta=dict(checkpoint.meta),
        section_bytes=checkpoint.section_sizes())
    if cache is not None:
        if len(cache) >= _VIEW_CACHE_MAX:
            cache.clear()
        cache[id(checkpoint)] = (checkpoint, view)
    return view


def live_view(process: FtProcess) -> ProcessView:
    """A view of the process's current state (no pickling round-trip;
    read-only use only)."""
    return ProcessView(
        process_id=process.process_id,
        snapshot=process.make_snapshot(),
        taken_at=process.sim.now,
        work_done=process.progress,
        epoch=process.current_ndc(),
        kind="live")


def stable_line(system, epoch: Optional[int] = None) -> Dict[ProcessId, ProcessView]:
    """The stable-storage line of a system.

    ``epoch=None`` picks, for each process, its latest completed stable
    checkpoint; an explicit epoch picks that establishment (falling back
    to the latest if the epoch is not retained).
    """
    line: Dict[ProcessId, ProcessView] = {}
    for proc in system.process_list():
        if proc.deposed:
            continue
        store = proc.node.stable
        checkpoint = None
        if epoch is not None:
            checkpoint = store.at_epoch(proc.process_id, epoch)
        if checkpoint is None:
            checkpoint = store.peek(proc.process_id)
        if checkpoint is not None:
            line[proc.process_id] = view_from_checkpoint(checkpoint)
    return line


def common_stable_line(system) -> Dict[ProcessId, ProcessView]:
    """The line hardware recovery would actually use: the minimum epoch
    completed by every in-service process."""
    epochs: List[int] = []
    for proc in system.process_list():
        if proc.deposed:
            continue
        latest = proc.node.stable.peek(proc.process_id)
        if latest is not None and latest.epoch is not None:
            epochs.append(latest.epoch)
    if not epochs:
        return {}
    return stable_line(system, epoch=min(epochs))


def volatile_line(system) -> Dict[ProcessId, ProcessView]:
    """The most recent volatile checkpoints (processes without one are
    omitted — a clean process may never have checkpointed)."""
    line: Dict[ProcessId, ProcessView] = {}
    for proc in system.process_list():
        if proc.deposed:
            continue
        checkpoint = proc.volatile_checkpoint()
        if checkpoint is not None:
            line[proc.process_id] = view_from_checkpoint(checkpoint)
    return line


def live_line(system) -> Dict[ProcessId, ProcessView]:
    """Views of every in-service process's current state."""
    return {proc.process_id: live_view(proc)
            for proc in system.process_list() if not proc.deposed}
