"""Closed-form rollback-distance model.

The paper evaluates the coordination with a "model-based comparative
study" whose details it omits for space; this module supplies a renewal-
theory model that predicts the two Figure 7 quantities and is validated
against the discrete-event simulation in ``tests/analysis``.

Notation (all rates are per second):

* ``lambda_v`` — rate of *validation events* (successful ATs).  These
  are the guarded active's external sends (always AT-tested) plus the
  unguarded peer's external sends that happen while dirty:
  ``lambda_v = l_ext1 + f_d2 * l_ext2`` (solved self-consistently, since
  ``f_d2`` itself depends on ``lambda_v``).
* ``f_d(p)`` — fraction of time process ``p`` is dirty: an alternating
  renewal process that becomes dirty at the first contaminating message
  after a validation (rate ``lambda_onset``) and is cleaned at the next
  validation (rate ``lambda_v``): ``f_d = lambda_onset / (lambda_onset +
  lambda_v)``.

**Write-through** (``E[D_wt]``): stable checkpoints are established at
every validation event, so a hardware fault at a random time undoes on
average the age of the current inter-validation interval.  For (approx.)
Poisson validations the length-biased mean age is ``1/lambda_v``.

**Coordinated** (``E[D_co]``): stable checkpoints are established every
``Delta`` seconds.  A fault at a random time undoes the time back to the
last establishment (mean ``Delta/2``) plus the age of the establishment
contents: zero if the process was clean at its timer expiry, else the
age of the volatile checkpoint copied (mean dirty-period age
``1/lambda_onset`` for exponential onset — the content was captured at
dirty onset).  Conditioning on the establishment having been dirty with
probability ``f_d``:

    E[D_co] ~= Delta/2 + f_d / lambda_onset ... where the second term is
    the expected time from dirty onset to timer expiry, i.e. the
    length-biased age of the dirty period at a random instant,
    1/lambda_v for exponential validations.

(The age of the copied volatile checkpoint at expiry equals the elapsed
dirty time, whose stationary mean is ``1/lambda_v``; see the derivation
in EXPERIMENTS.md.)
"""

from __future__ import annotations

import dataclasses

from ..errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class ModelParams:
    """Workload and protocol parameters of the model.

    Rates are per second; ``tb_interval`` is the adapted TB protocol's
    ``Delta``.
    """

    internal_rate1: float
    external_rate1: float
    internal_rate2: float
    external_rate2: float
    tb_interval: float

    def __post_init__(self) -> None:
        for name in ("internal_rate1", "external_rate1",
                     "internal_rate2", "external_rate2", "tb_interval"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.external_rate1 <= 0:
            raise ConfigurationError(
                "the model needs external_rate1 > 0 "
                "(the guarded active must run ATs)")


def validation_rate(params: ModelParams, iterations: int = 50) -> float:
    """Self-consistent validation-event rate ``lambda_v``.

    The unguarded peer contributes an AT only when dirty; its dirty
    fraction depends on ``lambda_v`` itself, so iterate to the fixed
    point (monotone, converges in a handful of steps).
    """
    lam = params.external_rate1
    for _ in range(iterations):
        f_d2 = dirty_fraction(params.internal_rate1, lam)
        lam_next = params.external_rate1 + f_d2 * params.external_rate2
        if abs(lam_next - lam) < 1e-15:
            lam = lam_next
            break
        lam = lam_next
    return lam


def dirty_fraction(onset_rate: float, validation_rate_: float) -> float:
    """Stationary dirty-time fraction of the alternating renewal
    process: ``onset / (onset + validation)`` (0 when nothing dirties)."""
    if onset_rate <= 0:
        return 0.0
    if validation_rate_ <= 0:
        return 1.0
    return onset_rate / (onset_rate + validation_rate_)


def expected_rollback_write_through(params: ModelParams) -> float:
    """``E[D_wt]``: the mean age since the last validation event."""
    return 1.0 / validation_rate(params)


def expected_rollback_coordinated(params: ModelParams,
                                  onset_rate: float = None) -> float:
    """``E[D_co]`` for a process whose dirty-onset rate is
    ``onset_rate`` (default: the unguarded peer's, i.e. the guarded
    active's internal message rate)."""
    lam_v = validation_rate(params)
    onset = params.internal_rate1 if onset_rate is None else onset_rate
    f_d = dirty_fraction(onset, lam_v)
    content_age_when_dirty = 1.0 / lam_v
    return params.tb_interval / 2.0 + f_d * content_age_when_dirty


def improvement_factor(params: ModelParams) -> float:
    """``E[D_wt] / E[D_co]`` — the paper's Fig. 7 gap."""
    return expected_rollback_write_through(params) / expected_rollback_coordinated(params)
