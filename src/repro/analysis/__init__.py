"""Analysis: global-state capture, the paper's consistency /
recoverability invariants as executable checkers, rollback-distance
aggregation, and the closed-form rollback model."""

from .dependability import (
    FaultLoad,
    goodput,
    goodput_comparison,
    loss_rate,
    measure_goodput,
)
from .global_state import (
    ProcessView,
    common_stable_line,
    live_line,
    live_view,
    stable_line,
    view_from_checkpoint,
    volatile_line,
)
from .invariants import (
    ORPHAN_MESSAGE,
    UNDETECTED_CONTAMINATION,
    UNRESTORABLE_MESSAGE,
    VALIDITY_MISMATCH,
    Violation,
    assert_line_ok,
    check_consistency,
    check_ground_truth,
    check_line,
    check_live_system,
    check_recoverability,
    check_system_line,
    summarize_violations,
)
from .model import (
    ModelParams,
    dirty_fraction,
    expected_rollback_coordinated,
    expected_rollback_write_through,
    improvement_factor,
    validation_rate,
)
from .rollback import (
    hardware_rollback_distances,
    per_process_rollback_stats,
    rollback_stat,
    software_rollback_distances,
)

__all__ = [
    "FaultLoad",
    "ModelParams",
    "ORPHAN_MESSAGE",
    "ProcessView",
    "UNDETECTED_CONTAMINATION",
    "UNRESTORABLE_MESSAGE",
    "VALIDITY_MISMATCH",
    "Violation",
    "assert_line_ok",
    "check_consistency",
    "check_ground_truth",
    "check_line",
    "check_live_system",
    "check_recoverability",
    "check_system_line",
    "common_stable_line",
    "dirty_fraction",
    "goodput",
    "goodput_comparison",
    "expected_rollback_coordinated",
    "expected_rollback_write_through",
    "hardware_rollback_distances",
    "improvement_factor",
    "live_line",
    "loss_rate",
    "measure_goodput",
    "live_view",
    "per_process_rollback_stats",
    "rollback_stat",
    "software_rollback_distances",
    "stable_line",
    "summarize_violations",
    "validation_rate",
    "view_from_checkpoint",
    "volatile_line",
]
