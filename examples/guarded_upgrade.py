#!/usr/bin/env python
"""Guarded software upgrading — the paper's motivating application.

An onboard software component is upgraded in flight.  The new version
(``P1_act``) runs in the foreground under guard of the previous,
high-confidence version (``P1_sdw``); the spacecraft's second component
``P2`` keeps interacting with the upgraded version.  Mid-mission the
upgrade's latent design fault activates; an acceptance test catches the
first corrupt command before it reaches a device, and the MDCD recovery
swaps the shadow in — rolling each process back (or forward) per its own
dirty bit.  Meanwhile the adapted TB protocol has been writing stable
checkpoints throughout, so a later transient hardware fault on one node
is also survived, with a small rollback distance.

Run:  python examples/guarded_upgrade.py
"""

from repro import (
    HardwareFaultPlan,
    Scheme,
    SoftwareFaultPlan,
    SystemConfig,
    TbConfig,
    WorkloadConfig,
    build_system,
)

HORIZON = 8_000.0


def main() -> None:
    config = SystemConfig(
        scheme=Scheme.COORDINATED, seed=7, horizon=HORIZON,
        tb=TbConfig(interval=60.0),
        workload1=WorkloadConfig(internal_rate=0.05, external_rate=0.005,
                                 step_rate=0.02, horizon=HORIZON),
        workload2=WorkloadConfig(internal_rate=0.03, external_rate=0.005,
                                 step_rate=0.02, horizon=HORIZON))
    system = build_system(config)

    # The upgraded version's defect manifests 1500 s into guarded
    # operation; a node crash follows much later.
    system.inject_software_fault(SoftwareFaultPlan(activate_at=1_500.0))
    system.inject_crash(HardwareFaultPlan(node_id="N2", crash_at=5_000.0,
                                          repair_time=2.0))
    system.run()

    print("=== Guarded software upgrade timeline ===\n")
    interesting = ("fault.", "at.fail", "recovery.")
    for rec in system.trace:
        if rec.category.startswith(interesting):
            who = f" [{rec.process}]" if rec.process else ""
            extras = {k: v for k, v in rec.data.items()
                      if k in ("distance", "node", "decisions", "epoch")}
            print(f"  t={rec.time:9.2f}{who:10s} {rec.category:30s} {extras or ''}")

    print("\n=== Outcome ===")
    recovery = system.sw_recovery
    print(f"Upgrade fault detected and shadow takeover completed: "
          f"{recovery.completed}")
    print(f"Local recovery decisions: "
          f"{ {str(k): v.value for k, v in recovery.decisions.items()} }")
    print(f"Suppressed messages re-sent by the shadow: {recovery.resent}")
    print(f"Hardware recoveries: {system.hw_recovery.recoveries}; rollback "
          f"distances (work-seconds): "
          f"{[round(d, 1) for d in system.hw_recovery.distances()]}")
    clean = all(not p.component.state.corrupt
                for p in system.process_list() if not p.deposed)
    corrupt_outputs = sum(1 for m in system.network.device_log if m.corrupt)
    print(f"All in-service states non-contaminated at end of mission: {clean}")
    print(f"Corrupt commands that reached devices: {corrupt_outputs}")


if __name__ == "__main__":
    main()
