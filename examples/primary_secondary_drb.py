#!/usr/bin/env python
"""Primary/secondary software fault tolerance (DRB/NSCP style).

The paper's second application of MDCD (Section 2.1): a
better-performance / less-reliable *primary* routine runs in the
foreground as ``P1_act`` and a poorer-performance / more-reliable
*secondary* runs in the background as ``P1_sdw``, permanently — not just
during an upgrade window.  This script runs a campaign of such
deployments, each with the primary's defect activating at a random time,
and reports how the guarded architecture performs: detection latency,
recovery decisions, rollback distances, and whether any corrupt command
ever escaped to a device.

Run:  python examples/primary_secondary_drb.py
"""

from repro import (
    Scheme,
    SoftwareFaultPlan,
    SystemConfig,
    TbConfig,
    WorkloadConfig,
    build_system,
)
from repro.analysis import software_rollback_distances
from repro.sim.monitor import RunningStat
from repro.sim.rng import RngRegistry

HORIZON = 4_000.0
DEPLOYMENTS = 20


def run_one(seed: int, activate_at: float):
    config = SystemConfig(
        scheme=Scheme.COORDINATED, seed=seed, horizon=HORIZON,
        tb=TbConfig(interval=60.0),
        workload1=WorkloadConfig(internal_rate=0.08, external_rate=0.02,
                                 step_rate=0.02, horizon=HORIZON),
        workload2=WorkloadConfig(internal_rate=0.04, external_rate=0.02,
                                 step_rate=0.02, horizon=HORIZON))
    system = build_system(config)
    system.inject_software_fault(SoftwareFaultPlan(activate_at=activate_at))
    system.run()
    detection = system.trace.last("at.fail")
    return system, detection


def main() -> None:
    rng = RngRegistry(2024).stream("campaign")
    latency = RunningStat()
    rollback = RunningStat()
    detected = 0
    escaped = 0
    decisions = {"rollback": 0, "roll-forward": 0}

    for k in range(DEPLOYMENTS):
        activate_at = rng.uniform(500.0, HORIZON / 2.0)
        system, detection = run_one(seed=1000 + k, activate_at=activate_at)
        escaped += sum(1 for m in system.network.device_log if m.corrupt)
        if system.sw_recovery.completed and detection is not None:
            detected += 1
            latency.add(detection.time - activate_at)
            for decision in system.sw_recovery.decisions.values():
                decisions[decision.value] += 1
            for d in software_rollback_distances(system.trace):
                rollback.add(d)

    print("=== Primary/secondary (DRB-style) campaign ===")
    print(f"deployments:                     {DEPLOYMENTS}")
    print(f"faults detected by AT:           {detected}")
    print(f"corrupt commands reaching devices: {escaped}")
    print(f"mean detection latency:          {latency.mean:8.1f} s "
          f"(min {latency.minimum:.1f}, max {latency.maximum:.1f})")
    print(f"recovery decisions:              {decisions}")
    print(f"mean software rollback distance: {rollback.mean:8.1f} work-s "
          f"over {rollback.count} rollbacks")
    print("\nInterpretation: the acceptance test catches the primary's "
          "fault at the next external message; contaminated processes "
          "roll back only to their most recent volatile checkpoint "
          "(confidence-adaptive recovery), clean ones roll forward, and "
          "the secondary takes over without any corrupt output escaping.")


if __name__ == "__main__":
    main()
