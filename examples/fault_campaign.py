#!/usr/bin/env python
"""Scheme shoot-out under a combined fault load.

Runs the same workload, the same software-fault activation and the same
Poisson crash schedule under four schemes — pure MDCD, write-through,
naive combination, and the paper's coordination — and tabulates what
each survives and at what rollback cost.  This is the paper's Section 1
argument as a table: naive combination is *worse* than its parts, and
coordination gets both fault classes at low cost.

Run:  python examples/fault_campaign.py
"""

from repro import (
    HardwareFaultPlan,
    Scheme,
    SoftwareFaultPlan,
    SystemConfig,
    TbConfig,
    WorkloadConfig,
    build_system,
)
from repro.experiments.reporting import format_table
from repro.sim.monitor import RunningStat
from repro.sim.rng import RngRegistry

HORIZON = 12_000.0
SEEDS = (11, 22, 33)


def crash_schedule(seed: int):
    rng = RngRegistry(seed).stream("crashes")
    t, plans = 0.0, []
    while True:
        t += rng.expovariate(1.0 / 2500.0)
        if t >= HORIZON * 0.9:
            return plans
        plans.append(HardwareFaultPlan(
            node_id=rng.choice(["N1a", "N1b", "N2"]), crash_at=t,
            repair_time=2.0))


def run(scheme: Scheme, seed: int):
    config = SystemConfig(
        scheme=scheme, seed=seed, horizon=HORIZON,
        tb=TbConfig(interval=30.0),
        workload1=WorkloadConfig(internal_rate=0.02, external_rate=0.002,
                                 step_rate=0.02, horizon=HORIZON),
        workload2=WorkloadConfig(internal_rate=0.01, external_rate=0.002,
                                 step_rate=0.02, horizon=HORIZON),
        trace_enabled=False)
    system = build_system(config)
    activate_at = HORIZON / 3.0
    system.inject_software_fault(SoftwareFaultPlan(activate_at=activate_at))
    if scheme is not Scheme.MDCD_ONLY:
        # One crash deliberately inside the detection window (after the
        # fault activates, likely before the next acceptance test runs):
        # the double-fault interleaving of the paper's Fig. 4(a).
        system.inject_crash(HardwareFaultPlan(node_id="N2",
                                              crash_at=activate_at + 80.0,
                                              repair_time=2.0))
        for plan in crash_schedule(seed):
            system.inject_crash(plan)
    system.run()
    return system


def main() -> None:
    rows = []
    for scheme in (Scheme.MDCD_ONLY, Scheme.WRITE_THROUGH, Scheme.NAIVE,
                   Scheme.COORDINATED):
        sw_recovered = 0
        end_clean = 0
        escaped = 0
        hw = RunningStat()
        crashes = 0
        for seed in SEEDS:
            system = run(scheme, seed)
            if system.sw_recovery.completed:
                sw_recovered += 1
            survivors = [p for p in system.process_list()
                         if not p.deposed and p.role.value != "P1_act"]
            if all(not p.component.state.corrupt for p in survivors):
                end_clean += 1
            escaped += sum(1 for m in system.network.device_log if m.corrupt)
            if system.hw_recovery is not None:
                crashes += system.hw_recovery.recoveries
                for d in system.hw_recovery.distances():
                    hw.add(d)
        rows.append([
            scheme.value,
            f"{sw_recovered}/{len(SEEDS)}",
            f"{crashes}",
            f"{hw.mean:.1f}" if hw.count else "n/a (no stable ckpts)",
            f"{end_clean}/{len(SEEDS)}",
            escaped,
        ])
    print(format_table(
        ["scheme", "sw faults recovered", "hw recoveries",
         "mean hw rollback (work-s)", "runs ending clean", "corrupt cmds escaped"],
        rows,
        title=f"Combined-fault campaign ({len(SEEDS)} seeds, "
              f"{HORIZON:.0f} s each, 1 software fault + Poisson crashes)"))
    print("\nReading the table: MDCD alone recovers the software fault but "
          "has no stable checkpoints for crashes; write-through survives "
          "both at a high rollback cost; the naive combination can end "
          "contaminated (Fig. 4(a)); coordination survives both cheaply.")


if __name__ == "__main__":
    main()
