#!/usr/bin/env python
"""GSU middleware: your own application under the coordination scheme.

The paper's concluding remarks describe the GSU Middleware — the layer
that hosts real application components under guarded operation.  This
example writes a small attitude-control application against that API:

* ``AttitudeControllerV2`` — the newly-uploaded controller (primary,
  runs as ``P1_act`` with a latent design fault injected mid-mission);
* ``AttitudeControllerV1`` — the proven controller escorting it as the
  shadow;
* ``StarTracker`` — the second component (``P2``) streaming attitude
  fixes and relaying thruster commands.

All protocol machinery — volatile/stable checkpoints, acceptance tests,
dirty bits, blocking windows, shadow takeover, hardware rollback — is
invisible to the application code: it just keeps state in ``ctx.state``
and calls ``ctx.send`` / ``ctx.emit``.

Run:  python examples/middleware_app.py
"""

from repro.middleware import ComponentLogic, GsuRuntime, MiddlewareConfig
from repro.tb.blocking import TbConfig
from repro.types import Role


class AttitudeController(ComponentLogic):
    """Closes the loop: consumes star-tracker fixes, commands thrusters."""

    def on_start(self, ctx):
        ctx.state.update(target=0.0, attitude=0.0, commands=0, fixes=0)

    def on_message(self, ctx, value):
        if isinstance(value, dict) and "fix" in value:
            ctx.state["fixes"] += 1
            ctx.state["attitude"] = value["fix"]

    def on_tick(self, ctx):
        error = ctx.state["target"] - ctx.state["attitude"]
        if abs(error) > 0.01:
            ctx.state["commands"] += 1
            # Thruster command to the star tracker's node (it owns the
            # actuator bus) and a telemetry frame to the ground.
            ctx.send({"burn": error / 2.0})
            ctx.emit({"telemetry": {"att": ctx.state["attitude"],
                                    "cmds": ctx.state["commands"]}})


class StarTracker(ComponentLogic):
    """Streams attitude fixes; applies burns it is commanded."""

    def on_start(self, ctx):
        ctx.state.update(attitude=1.0, burns=0)

    def on_tick(self, ctx):
        # Slow natural drift plus the last commanded corrections.
        ctx.state["attitude"] += 0.05
        ctx.send({"fix": round(ctx.state["attitude"], 6)})

    def on_message(self, ctx, value):
        if isinstance(value, dict) and "burn" in value:
            burn = value["burn"]
            if not isinstance(burn, (int, float)):
                return  # a corrupt command would be garbage; ignore shape
            ctx.state["burns"] += 1
            ctx.state["attitude"] += burn


def main() -> None:
    runtime = GsuRuntime(MiddlewareConfig(seed=11, tb=TbConfig(interval=40.0)))
    runtime.install_component_one(primary=AttitudeController(),
                                  secondary=AttitudeController(),
                                  tick_period=6.0)
    runtime.install_component_two(StarTracker(), tick_period=4.0)

    runtime.inject_design_fault(at=500.0)       # the upload's latent bug
    runtime.inject_crash("N1b", at=1500.0, repair_time=3.0)
    runtime.run(until=2_500.0)

    system = runtime.system
    print("=== Mission report ===")
    print(f"design fault detected by acceptance test: "
          f"{system.trace.count('at.fail')} failure(s) caught")
    print(f"shadow takeover completed: {runtime.takeover_happened()} "
          f"(controller v1 now active)")
    print(f"hardware recoveries: {system.hw_recovery.recoveries} "
          f"(rollback distances "
          f"{[round(d, 1) for d in system.hw_recovery.distances()]})")
    controller = runtime.state_of(Role.SHADOW_1)
    tracker = runtime.state_of(Role.PEER_2)
    print(f"controller state: commands={controller['commands']}, "
          f"fixes consumed={controller['fixes']}")
    print(f"tracker state: burns applied={tracker['burns']}, "
          f"attitude={tracker['attitude']:.3f} (target 0.0)")
    corrupt = sum(1 for m in system.network.device_log if m.corrupt)
    print(f"telemetry frames downlinked: {len(system.network.device_log)} "
          f"({corrupt} corrupt)")
    clean = all(not c.state.corrupt for c in runtime.in_service)
    print(f"all in-service states non-contaminated: {clean}")


if __name__ == "__main__":
    main()
