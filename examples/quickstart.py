#!/usr/bin/env python
"""Quickstart: build a coordinated system, run it, inspect what happened.

The paper's architecture in one script: three nodes host ``P1_act`` (the
low-confidence version of component 1), ``P1_sdw`` (its high-confidence
shadow) and ``P2`` (the second component).  The modified MDCD protocol
manages volatile checkpoints and confidence; the adapted TB protocol
establishes stable checkpoints every ``Delta`` seconds; the two
coordinate through dirty bits and ``Ndc`` epochs.

Run:  python examples/quickstart.py
"""

from repro import Scheme, SystemConfig, TbConfig, WorkloadConfig, build_system
from repro.analysis import check_system_line, common_stable_line, summarize_violations

HORIZON = 3_000.0  # simulated seconds


def main() -> None:
    config = SystemConfig(
        scheme=Scheme.COORDINATED,
        seed=42,
        horizon=HORIZON,
        tb=TbConfig(interval=60.0),  # stable checkpoint every 60 s
        workload1=WorkloadConfig(internal_rate=0.05, external_rate=0.01,
                                 step_rate=0.02, horizon=HORIZON),
        workload2=WorkloadConfig(internal_rate=0.02, external_rate=0.01,
                                 step_rate=0.02, horizon=HORIZON),
    )
    system = build_system(config)
    system.run()

    print(f"Simulated {HORIZON:.0f} s on 3 nodes "
          f"({system.sim.events_executed} events).\n")

    print("Per-process protocol activity:")
    for proc in system.process_list():
        counters = proc.counters.as_dict()
        interesting = {k: v for k, v in sorted(counters.items())
                       if k.startswith(("checkpoint", "at.", "sent", "recv"))}
        print(f"  {proc.process_id}:")
        for name, value in interesting.items():
            print(f"      {name:20s} {value}")

    print("\nStable-checkpoint epochs completed:",
          {str(p.process_id): p.hardware.ndc for p in system.process_list()})

    line = common_stable_line(system)
    violations = check_system_line(line)
    print("\nValidity-concerned consistency/recoverability of the "
          "hardware-recovery line:",
          summarize_violations(violations) or "no violations")

    print("\nDevice-bound external messages delivered:",
          len(system.network.device_log),
          "(all validated by acceptance tests)")


if __name__ == "__main__":
    main()
