#!/usr/bin/env python
"""Beyond three processes: a guarded upgrade in a K-peer constellation.

The paper fixes three processes "for simplicity and clarity" and cites
follow-up work removing the restriction.  This example runs the
generalized architecture: one upgraded flight-software component (active
+ escorting shadow) interacting with **five** peer subsystems that also
talk to each other — so when the upgrade's latent fault activates,
potential contamination spreads *transitively* through the constellation
and must be traced back (provenance) before validations can clean it.

Run:  python examples/constellation.py
"""

from repro.analysis import check_system_line
from repro.analysis.global_state import common_stable_line
from repro.app.faults import HardwareFaultPlan, SoftwareFaultPlan
from repro.app.workload import WorkloadConfig
from repro.general import GeneralSystemConfig, build_general_system
from repro.tb.blocking import TbConfig

HORIZON = 6_000.0
PEERS = 5


def main() -> None:
    config = GeneralSystemConfig(
        n_peers=PEERS, seed=7, horizon=HORIZON,
        tb=TbConfig(interval=60.0),
        workload1=WorkloadConfig(internal_rate=0.06, external_rate=0.01,
                                 step_rate=0.02, horizon=HORIZON),
        workload_peer=WorkloadConfig(internal_rate=0.05, external_rate=0.008,
                                     step_rate=0.02, horizon=HORIZON))
    system = build_general_system(config)
    system.inject_software_fault(SoftwareFaultPlan(activate_at=1_500.0))
    system.inject_crash(HardwareFaultPlan(node_id="N4", crash_at=4_000.0,
                                          repair_time=2.0))
    system.run()

    print(f"=== Constellation: guarded pair + {PEERS} peers "
          f"({len(system.process_list())} processes) ===\n")

    # How far did the contamination wavefront reach before detection?
    reached = [str(p.process_id) for p in system.process_list()
               if p.counters.get("checkpoint.type-1") > 0]
    detection = system.trace.last("at.fail")
    print(f"fault active at t=1500; detected at "
          f"t={detection.time:.1f} by {detection.process}")
    print(f"processes that entered potential contamination at least once: "
          f"{reached}")

    print(f"\nshadow takeover completed: {system.sw_recovery.completed}")
    print("local recovery decisions:",
          {str(k): v.value for k, v in system.sw_recovery.decisions.items()})
    print(f"suppressed messages re-sent by the shadow: "
          f"{system.sw_recovery.resent}")

    print(f"\nhardware recoveries: {system.hw_recovery.recoveries}; "
          f"rollback distances: "
          f"{[round(d, 1) for d in system.hw_recovery.distances()]}")

    clean = all(not p.component.state.corrupt
                for p in system.process_list() if not p.deposed)
    violations = check_system_line(common_stable_line(system))
    print(f"\nall in-service states non-contaminated: {clean}")
    print(f"final hardware-recovery line violations: "
          f"{len(violations) or 'none'}")
    corrupt_out = sum(1 for m in system.network.device_log if m.corrupt)
    print(f"corrupt external messages that escaped: {corrupt_out} "
          f"of {len(system.network.device_log)}")


if __name__ == "__main__":
    main()
